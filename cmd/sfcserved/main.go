// Command sfcserved serves the repo's kernels as a long-running request
// service over an in-memory volume store: POST /render raycasts a named
// volume to a PNG (or raw float32) frame, POST /filter runs the
// bilateral or Gaussian kernel into a new named volume, and GET/POST
// /volumes inspect and extend the store.
//
// The service exists to exercise the cancellable kernel entry points
// under a real request lifecycle: every request gets a deadline-bounded
// context, admission is a bounded queue that sheds overload with 429
// rather than piling up goroutines, and SIGINT/SIGTERM drains in-flight
// work before exit (bounded by -drain).
//
// With -cache-bytes set, render and filter responses are kept in a
// byte-budgeted LRU keyed by a content digest (volume name + store
// generation + full request parameters): repeated requests are served
// from memory with strong ETags (If-None-Match answers 304), and
// concurrent identical requests coalesce onto a single kernel run.
// Replacing a volume via PUT bumps its generation, which strands every
// cached result for the old contents.
//
// POST /jobs runs the same render/filter work asynchronously with
// progressive delivery: a job streams a coarse preview frame (the
// multiresolution subsample) over SSE (GET /jobs/{id}/events) before
// the full-resolution refinement, compatible jobs batch together to
// share dtype conversion and subsample setup (-job-batch, -job-linger),
// and an interactive lane preempts bulk work at every dispatch.
// DELETE /jobs/{id} (or a dropped SSE connection) cancels through the
// kernels' context plumbing.
//
// Every render/filter/volumes request runs under a request-scoped
// trace: the service accepts W3C traceparent, always answers with an
// X-Request-Id, and records a span per stage (admission queue and slot
// wait, cache lookup, dtype resolution, kernel, encode) plus the kernel
// workers' per-item spans. Completed requests emit one JSON access-log
// line (stderr) with the per-stage breakdown; -slow-log additionally
// dumps the full span tree of outliers, and -obs-off ablates the whole
// layer for overhead measurement.
//
// A second listener (-ops) carries the operational endpoints — /metrics
// (the metrics registry as JSON, or Prometheus text format with
// ?format=prometheus), /ops/requests (live in-flight requests with
// their current stage), /ops/trace/recent (the last completed request
// span-trees as Chrome trace_event JSON for about:tracing/Perfetto),
// /version, /debug/vars and /debug/pprof — kept off the request port so
// they are never behind the admission gate.
//
//	sfcserved -addr :8080 -ops :8081 -volume demo=plume:64:zorder
//	curl -d '{"volume":"demo","width":256,"height":256}' localhost:8080/render > frame.png
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sfcmem/internal/jobs"
	"sfcmem/internal/metrics"
	"sfcmem/internal/obs"
	"sfcmem/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

type config struct {
	addr, ops string
	volumes   []string
	// dataDir, when non-empty, persists volumes as SFC-ordered brick
	// files under this directory and demand-loads them back; empty
	// keeps the original RAM-only store.
	dataDir string
	// storeRAMBytes caps the RAM tier when dataDir is set; volumes past
	// the budget are evicted LRU and paged back in on access.
	storeRAMBytes   int64
	slots           int
	queueDepth      int
	cacheBytes      int64
	jobBatch        int
	jobLinger       time.Duration
	defaultDeadline time.Duration
	maxDeadline     time.Duration
	drainTimeout    time.Duration
	obsOff          bool
	slowLog         time.Duration
	// accessLog receives the JSON access-log stream; run wires it to
	// stderr, tests substitute a buffer. Nil falls back to stderr.
	accessLog io.Writer
}

// volumeList collects repeated -volume flags.
type volumeList struct{ specs *[]string }

func (v volumeList) String() string {
	if v.specs == nil {
		return ""
	}
	return strings.Join(*v.specs, ",")
}

func (v volumeList) Set(s string) error {
	*v.specs = append(*v.specs, s)
	return nil
}

// run is main with injectable lifetime, args and stderr so tests can
// drive the full service including shutdown. Exit codes: 0 clean (also
// after a drained signal shutdown), 1 runtime error, 2 usage error.
func run(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "localhost:8080", "request listen address")
	fs.StringVar(&cfg.ops, "ops", "localhost:8081", "ops listen address (/metrics, /debug/pprof, /debug/vars)")
	fs.Var(volumeList{&cfg.volumes}, "volume", "volume spec name=dataset:size:layout[:dtype] (repeatable); default demo=plume:48:zorder")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "directory for the persistent volume tier (SFC-ordered brick files); empty keeps volumes in RAM only")
	fs.Int64Var(&cfg.storeRAMBytes, "store-ram-bytes", 0, "RAM budget for resident volumes when -data-dir is set; 0 keeps everything resident (disk is durability only)")
	fs.IntVar(&cfg.slots, "slots", 2, "requests running kernels concurrently")
	fs.IntVar(&cfg.queueDepth, "queue", 8, "admitted requests waiting beyond the running ones; overflow gets 429")
	fs.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "render/filter response cache budget in bytes; 0 disables caching and request coalescing")
	fs.IntVar(&cfg.jobBatch, "job-batch", 8, "jobs per batch before a pending /jobs batch runs immediately")
	fs.DurationVar(&cfg.jobLinger, "job-linger", 25*time.Millisecond, "how long a pending /jobs batch waits for compatible company before running")
	fs.DurationVar(&cfg.defaultDeadline, "deadline", 30*time.Second, "per-request deadline when the request sets none")
	fs.DurationVar(&cfg.maxDeadline, "max-deadline", 2*time.Minute, "upper bound on client-requested deadlines")
	fs.DurationVar(&cfg.drainTimeout, "drain", 30*time.Second, "how long shutdown waits for in-flight requests")
	fs.BoolVar(&cfg.obsOff, "obs-off", false, "disable request tracing and access logs (ablation; RED metrics stay on)")
	fs.DurationVar(&cfg.slowLog, "slow-log", 0, "dump the full span tree of requests slower than this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.slots < 1 || cfg.queueDepth < 0 {
		fmt.Fprintln(stderr, "sfcserved: -slots must be >= 1 and -queue >= 0")
		return 2
	}
	if cfg.storeRAMBytes != 0 && cfg.dataDir == "" {
		fmt.Fprintln(stderr, "sfcserved: -store-ram-bytes needs -data-dir (an evicted volume must have bricks to reload from)")
		return 2
	}
	a, err := newApp(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "sfcserved:", err)
		return 1
	}
	var names []string
	for _, v := range a.srv.store.List() {
		names = append(names, v.Name)
	}
	fmt.Fprintf(stderr, "sfcserved: serving on http://%s (ops http://%s), volumes: %s\n",
		a.apiAddr(), a.opsAddr(), strings.Join(names, ", "))
	if err := a.run(ctx); err != nil {
		fmt.Fprintln(stderr, "sfcserved:", err)
		return 1
	}
	fmt.Fprintln(stderr, "sfcserved: drained, bye")
	return 0
}

// app is the assembled service: volume store, request server, and the
// two HTTP servers with their listeners already bound (so tests can use
// port 0 and read the chosen addresses before run).
type app struct {
	cfg          config
	srv          *server
	apiLn, opsLn net.Listener
	api, ops     *http.Server
}

func newApp(cfg config) (*app, error) {
	reg := metrics.NewRegistry()
	reg.Namespace = "sfcserved"
	var vols store.VolumeStore
	if cfg.dataDir != "" {
		s, err := store.Open(cfg.dataDir, store.Options{
			RAMBytes: cfg.storeRAMBytes,
			Metrics:  reg,
		})
		if err != nil {
			return nil, err
		}
		vols = s
	} else {
		vols = store.NewMemory(reg)
	}
	specs := cfg.volumes
	if len(specs) == 0 {
		specs = []string{"demo=plume:48:zorder"}
	}
	for _, spec := range specs {
		v, err := parseVolumeSpec(spec)
		if err != nil {
			return nil, err
		}
		if err := vols.Put(v); err != nil {
			return nil, err
		}
	}
	srv := newServer(vols, reg, cfg.slots, cfg.queueDepth, cfg.defaultDeadline, cfg.maxDeadline)
	srv.enableCache(cfg.cacheBytes)
	// Runner count tracks -slots: each running job holds one admission
	// run slot for its kernel passes, so more runners than slots would
	// only park batches in the admission queue.
	srv.enableJobs(jobs.Config{MaxBatch: cfg.jobBatch, Linger: cfg.jobLinger, Runners: cfg.slots})
	if !cfg.obsOff {
		logw := cfg.accessLog
		if logw == nil {
			logw = os.Stderr
		}
		srv.hub = obs.NewHub(logw, 0)
		srv.hub.SlowThreshold = cfg.slowLog
		// The access-log stream opens with the build identity, so every
		// log file self-describes which binary produced it.
		bi := versionInfo()
		srv.hub.Logger().Info("boot",
			"module_version", bi["module_version"],
			"go_version", bi["go_version"],
			"vcs_revision", bi["vcs_revision"],
			"vcs_modified", bi["vcs_modified"],
		)
	}
	// The store is fully populated before the listeners bind, so the
	// service is ready the moment it can accept a connection. A bare
	// newServer (as in unit tests) answers /readyz with 503.
	srv.ready.Store(true)

	apiLn, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	opsLn, err := net.Listen("tcp", cfg.ops)
	if err != nil {
		apiLn.Close()
		return nil, err
	}
	opsMux := http.NewServeMux()
	opsMux.Handle("/metrics", reg)
	opsMux.HandleFunc("GET /version", srv.handleVersion)
	if srv.hub != nil {
		opsMux.HandleFunc("GET /ops/requests", srv.hub.HandleInflight)
		opsMux.HandleFunc("GET /ops/trace/recent", srv.hub.HandleRecent)
	}
	opsMux.Handle("/debug/vars", expvar.Handler())
	opsMux.HandleFunc("/debug/pprof/", pprof.Index)
	opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &app{
		cfg:   cfg,
		srv:   srv,
		apiLn: apiLn,
		opsLn: opsLn,
		api:   &http.Server{Handler: srv.mux()},
		ops:   &http.Server{Handler: opsMux},
	}, nil
}

func (a *app) apiAddr() string { return a.apiLn.Addr().String() }
func (a *app) opsAddr() string { return a.opsLn.Addr().String() }

// run serves until ctx is done, then drains: the readiness check flips
// to 503, the listeners close, and in-flight requests get up to the
// drain timeout to finish before their connections are cut.
func (a *app) run(ctx context.Context) error {
	errc := make(chan error, 2)
	go func() { errc <- a.api.Serve(a.apiLn) }()
	go func() { errc <- a.ops.Serve(a.opsLn) }()
	select {
	case <-ctx.Done():
	case err := <-errc:
		// A listener failed underneath us; shut the rest down too.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.shutdown()
			return err
		}
	}
	return a.shutdown()
}

func (a *app) shutdown() error {
	a.srv.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), a.cfg.drainTimeout)
	defer cancel()
	// Jobs drain before the API server: queued jobs run to completion
	// (or fail cleanly when the timeout expires and their kernels are
	// cancelled), their SSE watchers see terminal events and return,
	// and only then does Shutdown wait on the remaining connections.
	var err error
	if a.srv.jobs != nil {
		err = a.srv.jobs.Drain(dctx)
	}
	if apiErr := a.api.Shutdown(dctx); err == nil {
		err = apiErr
	}
	if opsErr := a.ops.Shutdown(dctx); err == nil {
		err = opsErr
	}
	return err
}
