package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfcmem"
	"sfcmem/internal/metrics"
	"sfcmem/internal/store"
)

// TestReadyzLifecycle checks the liveness/readiness split end to end:
// a served app answers 200 on both, while a server that has not finished
// initialization is live but not ready.
func TestReadyzLifecycle(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestReadyzBeforeInitAndDuringDrain drives the two not-ready states
// against the handler directly (the drain state cannot be probed over
// HTTP: shutdown closes the listener before in-flight work finishes).
func TestReadyzBeforeInitAndDuringDrain(t *testing.T) {
	s := newServer(store.NewMemory(nil), metrics.NewRegistry(), 1, 1, time.Second, time.Second)
	mux := s.mux()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	// Before initialization: live, not ready.
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("uninitialized /healthz: %d, want 200", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "not initialized") {
		t.Errorf("uninitialized /readyz: %d %q, want 503 not initialized", rec.Code, rec.Body.String())
	}

	// Ready once initialization completes.
	s.ready.Store(true)
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("ready /readyz: %d, want 200", rec.Code)
	}

	// Draining: still live, no longer ready.
	s.draining.Store(true)
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("draining /healthz: %d, want 200 (liveness must survive the drain)", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining /readyz: %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

// TestDrainFlipsReadyz starts a real app, parks a request in the render
// hook, begins the drain, and checks the server-side readiness state
// flipped while the in-flight request still completes.
func TestDrainFlipsReadyz(t *testing.T) {
	a, err := newApp(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	if !a.srv.ready.Load() {
		t.Fatal("served app is not ready")
	}
	inflight := make(chan int, 1)
	go func() {
		resp := postJSON(t, "http://"+a.apiAddr()+"/render",
			renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-hook.entered

	cancel()
	waitFor(t, "draining flag", func() bool { return a.srv.draining.Load() })
	rec := httptest.NewRecorder()
	a.srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz: %d, want 503", rec.Code)
	}

	close(hook.release)
	if st := <-inflight; st != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", st)
	}
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

func TestVolumeDtypeLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.volumes = []string{"demo=plume:16:zorder", "demo8=plume:16:zorder:uint8"}
	a, _, _ := startApp(t, cfg)
	base := "http://" + a.apiAddr()

	// The spec dtype shows up in the listing.
	resp, err := http.Get(base + "/volumes")
	if err != nil {
		t.Fatal(err)
	}
	var vols []store.Info
	if err := json.NewDecoder(resp.Body).Decode(&vols); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dtypes := map[string]string{}
	for _, v := range vols {
		dtypes[v.Name] = v.Dtype
	}
	if dtypes["demo"] != "float32" || dtypes["demo8"] != "uint8" {
		t.Errorf("listed dtypes %v, want demo=float32 demo8=uint8", dtypes)
	}

	// A narrow volume renders, both natively and converted on the fly.
	for _, req := range []renderRequest{
		{Volume: "demo8", Views: 8, Width: 16, Height: 16, Workers: 1},
		{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1, Dtype: "uint16"},
	} {
		resp := postJSON(t, base+"/render", req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("render %+v: status %d body %s", req, resp.StatusCode, body)
		}
	}
	resp = postJSON(t, base+"/render", renderRequest{Volume: "demo", Width: 16, Height: 16, Dtype: "int3"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("render with bogus dtype: status %d, want 400", resp.StatusCode)
	}

	// Filtering at a requested dtype stores the result at that dtype.
	resp = postJSON(t, base+"/filter", filterRequest{Src: "demo", Kernel: "gaussian", Radius: 1, Workers: 2, Dtype: "uint8"})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filter: status %d body %s", resp.StatusCode, body)
	}
	var fr struct {
		Volume string `json:"volume"`
		Dtype  string `json:"dtype"`
	}
	if err := json.Unmarshal(body, &fr); err != nil || fr.Dtype != "uint8" {
		t.Errorf("filter response %s (err %v), want dtype uint8", body, err)
	}
	v, err := a.srv.store.Get("demo.filtered")
	if err != nil || v.Grid.Dtype() != sfcmem.U8 {
		t.Errorf("filtered volume not stored at uint8 (err=%v)", err)
	}
}

func TestUploadVolume(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()

	// Build a uint16 phantom locally and upload its raw bytes.
	l := sfcmem.NewLayout(sfcmem.Array, 8, 6, 5)
	src := sfcmem.MRIPhantomAny(sfcmem.U16, l, 13, 0.02)
	var raw bytes.Buffer
	if err := sfcmem.SaveRawAny(&raw, src); err != nil {
		t.Fatal(err)
	}
	put := func(url string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	url := base + "/volumes/up?dtype=uint16&layout=hilbert&nx=8&ny=6&nz=5"
	resp := put(url, raw.Bytes())
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d body %s", resp.StatusCode, body)
	}
	var info store.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Dtype != "uint16" || info.Layout != "hilbert" || info.Nx != 8 || info.Ny != 6 || info.Nz != 5 {
		t.Errorf("upload info %+v", info)
	}

	// The samples survived the trip: compare against the local grid.
	v, err := a.srv.store.Get("up")
	if err != nil {
		t.Fatal("uploaded volume not in store")
	}
	want, got := sfcmem.Grids[uint16](src), sfcmem.Grids[uint16](v.Grid)
	want.ForEachIndex(func(i, j, k int, s uint16) {
		if got.At(i, j, k) != s {
			t.Fatalf("uploaded sample (%d,%d,%d) = %d, want %d", i, j, k, got.At(i, j, k), s)
		}
	})

	// And it renders like any synthesized volume.
	rresp := postJSON(t, base+"/render", renderRequest{Volume: "up", Views: 8, Width: 16, Height: 16, Workers: 1})
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("render of upload: status %d", rresp.StatusCode)
	}

	// Error paths: truncated body names byte counts; bad params 400;
	// an impossible volume size is refused before reading the body.
	resp = put(url, raw.Bytes()[:raw.Len()-7])
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(string(body), "truncated") ||
		!strings.Contains(string(body), "want 480") {
		t.Errorf("truncated upload: status %d body %s, want 400 naming byte counts", resp.StatusCode, body)
	}
	for _, bad := range []string{
		"/volumes/x?dtype=int3&layout=zorder&nx=4&ny=4&nz=4",
		"/volumes/x?dtype=uint8&layout=bogus&nx=4&ny=4&nz=4",
		"/volumes/x?dtype=uint8&layout=zorder&nx=0&ny=4&nz=4",
		"/volumes/x?dtype=uint8&layout=zorder&nx=four&ny=4&nz=4",
	} {
		resp := put(base+bad, []byte{1, 2, 3})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp = put(base+"/volumes/x?dtype=float64&layout=array&nx=512&ny=512&nz=512", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize dims: status %d, want 413", resp.StatusCode)
	}
}
