package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sfcmem"
	"sfcmem/internal/jobs"
	"sfcmem/internal/metrics"
	"sfcmem/internal/obs"
	"sfcmem/internal/rcache"
	"sfcmem/internal/store"
)

// server holds the request-service state: the volume store, the metrics
// registry, and the two-stage admission gate.
//
// Admission works in two stages so load sheds at the door instead of
// piling up in goroutines. queue has capacity slots+depth and is taken
// with a non-blocking send: failure means the service is saturated past
// its queueing allowance and the request is refused with 429 before any
// kernel work. run has capacity slots and is taken with a blocking send
// racing the request's deadline: holding it is the right to occupy
// kernel workers. A request that times out while queued has consumed
// nothing but its queue token.
type server struct {
	store store.VolumeStore
	reg   *metrics.Registry

	queue chan struct{}
	run   chan struct{}

	defaultDeadline time.Duration
	maxDeadline     time.Duration
	draining        atomic.Bool
	// ready flips to true once the volume store is populated and the
	// service is willing to take traffic; /readyz reports 503 until then
	// and again once draining starts. /healthz stays 200 throughout —
	// liveness and routability are separate questions.
	ready atomic.Bool

	// renderImage is the kernel invocation behind POST /render,
	// replaceable in tests to make admission behaviour deterministic.
	renderImage func(ctx context.Context, vol *sfcmem.AnyGrid, cam sfcmem.Camera, tf *sfcmem.TransferFunc, o sfcmem.RenderOptions) (*sfcmem.Image, error)

	// cache, when non-nil, is the content-addressed response cache with
	// single-flight coalescing (-cache-bytes). Nil keeps the pre-cache
	// behavior: every request runs the kernel.
	cache *rcache.Cache
	// nonce scopes cache digests (and therefore ETags) to this process;
	// see bootNonce.
	nonce string

	// jobs, when non-nil, is the async job subsystem behind /jobs:
	// batching scheduler, priority lanes, progressive SSE delivery.
	// Wired by enableJobs (newApp does); nil answers /jobs with 503.
	jobs *jobs.Manager
	// jobTTFB observes submit-to-first-coarse-frame latency — the
	// progressive-delivery headline number (DESIGN.md §12).
	jobTTFB *metrics.Histogram

	// hub is the request-observability layer: per-request traces,
	// access logs, the completed-trace ring, and in-flight inspection.
	// Nil (-obs-off) disables all of it; every touch point is nil-safe.
	hub *obs.Hub
	// routes holds the per-route RED instrumentation (status-class
	// counters + whole-request latency), keyed by route name.
	routes map[string]*routeStats

	renderReqs    *metrics.Counter
	filterReqs    *metrics.Counter
	rejected      *metrics.Counter
	deadlineMiss  *metrics.Counter
	renderLatency *metrics.Histogram
	filterLatency *metrics.Histogram

	// tune.* family (see tune_api.go): request count, applied
	// re-layouts, searches that beat Z order, search latency.
	tuneReqs     *metrics.Counter
	tuneApplied  *metrics.Counter
	tuneImproved *metrics.Counter
	tuneLatency  *metrics.Histogram
}

func newServer(vols store.VolumeStore, reg *metrics.Registry, slots, depth int, defaultDeadline, maxDeadline time.Duration) *server {
	s := &server{
		store:           vols,
		reg:             reg,
		queue:           make(chan struct{}, slots+depth),
		run:             make(chan struct{}, slots),
		defaultDeadline: defaultDeadline,
		maxDeadline:     maxDeadline,
		renderImage:     sfcmem.RenderAnyCtx,
		nonce:           bootNonce(),
		renderReqs:      reg.Counter("render.requests", 1),
		filterReqs:      reg.Counter("filter.requests", 1),
		rejected:        reg.Counter("admission.rejected", 1),
		deadlineMiss:    reg.Counter("deadline.exceeded", 1),
		renderLatency:   reg.Histogram("render.latency"),
		filterLatency:   reg.Histogram("filter.latency"),
	}
	// Per-route RED families. admission.rejected/deadline.exceeded stay
	// registered for compatibility; the status-class counters supersede
	// them as the failure signal (a 429 is a render.4xx too).
	s.routes = map[string]*routeStats{
		"render":  newRouteStats(reg, "render"),
		"filter":  newRouteStats(reg, "filter"),
		"volumes": newRouteStats(reg, "volumes"),
		"jobs":    newRouteStats(reg, "jobs"),
	}
	reg.Register("admission.queued", metrics.GaugeFunc(func() any { return len(s.queue) }))
	reg.Register("admission.running", metrics.GaugeFunc(func() any { return len(s.run) }))
	reg.Register("build.info", metrics.Info(versionInfo()))
	s.enableTuneMetrics()
	return s
}

// enableCache switches on the response cache with the given byte
// budget and publishes its counters and gauges in the metrics
// registry. A budget <= 0 leaves caching (and coalescing) off.
func (s *server) enableCache(budget int64) {
	if budget <= 0 {
		return
	}
	s.cache = rcache.New(budget)
	stat := func(f func(rcache.Stats) any) metrics.GaugeFunc {
		return func() any { return f(s.cache.Stats()) }
	}
	s.reg.Register("cache.hits", stat(func(st rcache.Stats) any { return st.Hits }))
	s.reg.Register("cache.misses", stat(func(st rcache.Stats) any { return st.Misses }))
	s.reg.Register("cache.evictions", stat(func(st rcache.Stats) any { return st.Evictions }))
	s.reg.Register("cache.coalesced", stat(func(st rcache.Stats) any { return st.Coalesced }))
	s.reg.Register("cache.resident_bytes", stat(func(st rcache.Stats) any { return st.ResidentBytes }))
	s.reg.Register("cache.entries", stat(func(st rcache.Stats) any { return st.Entries }))
	s.reg.Register("cache.budget_bytes", stat(func(st rcache.Stats) any { return st.BudgetBytes }))
}

// digest hashes the canonical form of a request into the cache key /
// strong ETag. Every field that can change the response bytes must be
// present; pure execution knobs (workers, deadline) must not be, or
// identical work would miss. The generation ties the digest to the
// volume's current contents. Each part is written length-prefixed
// (netstring style): volume names are client-chosen, so a separator
// character inside a value must not be able to forge a field boundary
// and collide two distinct requests onto one key.
func digest(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		s := fmt.Sprint(p)
		fmt.Fprintf(h, "%d:%s,", len(s), s) //nolint:errcheck // hash.Hash.Write never fails
	}
	return hex.EncodeToString(h.Sum(nil))
}

// bootNonce returns a random per-process value mixed into every cache
// digest. Without -data-dir, store generations restart at 1 on every
// boot, so without the nonce an ETag minted by a previous process
// (same volume name and generation, but a different -volume
// dataset/size, or a /filter dst that this process never produced)
// would validate a 304 against different bytes. With -data-dir the
// persisted manifests carry generations across restarts, but -volume
// specs still re-synthesize at boot, so the nonce stays: ETags are
// process-scoped and the persisted generation floor is what keeps
// in-process DELETE/re-create sequences honest.
func bootNonce() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("sfcserved: boot nonce: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// etagFor wraps a digest as a strong entity tag.
func etagFor(d string) string { return `"` + d + `"` }

// etagMatches reports whether an If-None-Match header value matches
// etag: either the wildcard or a listed tag. Weak-comparison prefixes
// are tolerated on the client side (W/"x" matches "x"); the tags we
// mint are strong.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// serveValue writes a computed-or-cached response value. The entity
// tag and cache-outcome headers only appear when the cache is enabled,
// keeping -cache-bytes=0 responses identical to the pre-cache service.
func (s *server) serveValue(w http.ResponseWriter, v rcache.Value, etag string, out rcache.Outcome) {
	w.Header().Set("Content-Type", v.ContentType)
	for k, val := range v.Meta {
		w.Header().Set(k, val)
	}
	if s.cache != nil {
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Cache", out.String())
	}
	w.Write(v.Body) //nolint:errcheck // headers are out; nothing to report to
}

// mux routes the request-service API (the ops endpoints live on their
// own mux; see newApp). Kernel and store routes go through instrument;
// the probes and /version stay bare — scraping them every second must
// not churn the trace ring or the access log.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /render", s.instrument("render", s.handleRender))
	m.HandleFunc("POST /filter", s.instrument("filter", s.handleFilter))
	m.HandleFunc("GET /volumes", s.instrument("volumes", s.handleListVolumes))
	m.HandleFunc("POST /volumes", s.instrument("volumes", s.handleCreateVolume))
	m.HandleFunc("PUT /volumes/{name}", s.instrument("volumes", s.handleUploadVolume))
	m.HandleFunc("DELETE /volumes/{name}", s.instrument("volumes", s.handleDeleteVolume))
	m.HandleFunc("POST /volumes/{name}/tune", s.instrument("volumes", s.handleTuneVolume))
	m.HandleFunc("POST /jobs", s.instrument("jobs", s.handleCreateJob))
	m.HandleFunc("GET /jobs/{id}", s.instrument("jobs", s.handleGetJob))
	m.HandleFunc("GET /jobs/{id}/events", s.instrument("jobs", s.handleJobEvents))
	m.HandleFunc("DELETE /jobs/{id}", s.instrument("jobs", s.handleCancelJob))
	m.HandleFunc("GET /version", s.handleVersion)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /readyz", s.handleReadyz)
	return m
}

// errBusy reports an admission-queue overflow.
var errBusy = errors.New("admission queue full")

// admit runs the two-stage gate. On success the caller holds a run slot
// and must invoke the returned release. errBusy means shed the request;
// a context error means the deadline expired while queued. Each stage
// of the gate is a trace span — admission.queue is the (non-blocking)
// queue-token grab, admission.slot the wait for the right to occupy
// kernel workers — so a 504 is attributable to queueing, not kernels.
func (s *server) admit(ctx context.Context) (release func(), err error) {
	t := obs.FromContext(ctx)
	endQueue := t.Stage("admission.queue")
	select {
	case s.queue <- struct{}{}:
		endQueue()
	default:
		endQueue()
		return nil, errBusy
	}
	endSlot := t.Stage("admission.slot")
	select {
	case s.run <- struct{}{}:
		endSlot()
		return func() { <-s.run; <-s.queue }, nil
	case <-ctx.Done():
		endSlot()
		<-s.queue
		return nil, ctx.Err()
	}
}

// retryAfterSeconds estimates when a shed client should come back:
// the work already queued ahead of it (queue occupancy × recent mean
// request latency) divided by the service's parallelism, rounded up
// and clamped to [1, 30] seconds. Before any request has completed
// there is no latency sample and the floor applies — the pre-derived
// behavior (a constant 1) — so the header only grows once the service
// has evidence the backlog really is that slow.
func (s *server) retryAfterSeconds() int {
	mean := s.renderLatency.Mean()
	if m := s.filterLatency.Mean(); m > mean {
		mean = m
	}
	est := time.Duration(len(s.queue)) * mean / time.Duration(cap(s.run))
	sec := int((est + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// requestCtx derives the per-request context: the client's deadline_ms
// clamped to the configured maximum, or the default when unset. It
// chains off the connection context, so a client hanging up cancels the
// kernel too.
func (s *server) requestCtx(r *http.Request, deadlineMS int) (context.Context, context.CancelFunc) {
	d := s.defaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.maxDeadline {
		d = s.maxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// admissionError writes the HTTP response for a failed admit or a
// kernel aborted by its context, and returns true if err was one of
// those. Unrecognised errors are left for the caller.
func (s *server) admissionError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Inc(0)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, "server busy: admission queue full", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineMiss.Inc(0)
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client hung up (or the connection died); the status is
		// a formality nobody will read.
		http.Error(w, "request cancelled", http.StatusServiceUnavailable)
	default:
		return false
	}
	return true
}

type renderRequest struct {
	Volume string `json:"volume"`
	// View/Views select a camera on the standard orbit, matching the
	// paper's harness: view v of n evenly spaced azimuths.
	View    int  `json:"view"`
	Views   int  `json:"views"`
	Width   int  `json:"width"`
	Height  int  `json:"height"`
	Workers int  `json:"workers"`
	Shade   bool `json:"shade"`
	// Format is "png" (default) or "raw": raw is the float32 RGBA
	// frame, little-endian, row-major.
	Format string `json:"format"`
	// Dtype, when set, renders the volume converted to that element
	// type (e.g. "uint8"); default is the volume's stored dtype.
	Dtype      string `json:"dtype"`
	DeadlineMS int    `json:"deadline_ms"`
}

// httpErr carries an HTTP status with its message through the shared
// plan helpers, so the sync handlers and the jobs API map identical
// validation onto their own response surfaces.
type httpErr struct {
	code int
	msg  string
}

func (e *httpErr) Error() string { return e.msg }

// getVolume resolves a name through the store, mapping its two failure
// modes onto HTTP: an unknown (or deleted) name is the caller's 404; a
// failed demand load (I/O, integrity) is the service's 500 — the store
// refuses to serve data it cannot verify, and so do we.
func (s *server) getVolume(name string) (*store.Volume, *httpErr) {
	v, err := s.store.Get(name)
	if err == nil {
		return v, nil
	}
	if errors.Is(err, store.ErrNotFound) {
		return nil, &httpErr{http.StatusNotFound, fmt.Sprintf("unknown volume %q", name)}
	}
	return nil, &httpErr{http.StatusInternalServerError, err.Error()}
}

// renderPlan is a validated render request with everything resolved
// that both the sync path and a render job need before any kernel
// work: the volume, the element type the render runs at, and the
// response digest (which doubles as cache key and ETag).
type renderPlan struct {
	req  renderRequest // normalized: all defaults applied
	vol  *store.Volume
	dt   sfcmem.Dtype
	key  string
	etag string
}

// planRender normalizes and validates req and computes its digest. The
// digest covers everything that determines the response bytes: the
// volume's contents (name + generation), the element type the render
// runs at, and the full view/framing parameters. Workers and deadline
// are execution knobs — per-pixel compositing is worker-count-
// invariant — so they are deliberately absent. Render jobs store their
// final frame under this same digest, which is what lets a sync
// /render hit the cache after the job completes.
func (s *server) planRender(req renderRequest) (*renderPlan, *httpErr) {
	if req.Views <= 0 {
		req.Views = 24
	}
	if req.Width <= 0 {
		req.Width = 256
	}
	if req.Height <= 0 {
		req.Height = 256
	}
	if req.Workers <= 0 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	if req.Width > 4096 || req.Height > 4096 || req.Workers > 256 {
		return nil, &httpErr{http.StatusBadRequest, "image or worker count out of range"}
	}
	if req.Format == "" {
		req.Format = "png"
	}
	if req.Format != "png" && req.Format != "raw" {
		return nil, &httpErr{http.StatusBadRequest, fmt.Sprintf("unknown format %q (want png or raw)", req.Format)}
	}
	vol, herr := s.getVolume(req.Volume)
	if herr != nil {
		return nil, herr
	}
	dt := vol.Grid.Dtype()
	if req.Dtype != "" {
		var err error
		if dt, err = sfcmem.ParseDtype(req.Dtype); err != nil {
			return nil, &httpErr{http.StatusBadRequest, err.Error()}
		}
	}
	key := digest(s.nonce, "render", "v1", vol.Name, vol.Gen, dt,
		req.View, req.Views, req.Width, req.Height, req.Shade, req.Format)
	return &renderPlan{req: req, vol: vol, dt: dt, key: key, etag: etagFor(key)}, nil
}

// rasterize runs the raycast kernel over g with req's orbit framing at
// the given output size and encodes the frame — the section shared by
// sync /render (full resolution) and the jobs runner, which calls it
// twice per job: once over the coarse subsample at reduced size, once
// over the full volume. The stage name keeps the two passes apart in
// one trace.
func (s *server) rasterize(ctx context.Context, t *obs.Trace, g *sfcmem.AnyGrid, req renderRequest, width, height int, stage string) (rcache.Value, error) {
	nx, ny, nz := g.Dims()
	cam := sfcmem.Orbit(req.View, req.Views, nx, ny, nz, width, height)
	endKernel := t.Stage(stage)
	img, err := s.renderImage(sfcmem.WithWorkObserver(ctx, t.Observer("tile")), g, cam, sfcmem.DefaultTransferFunc(), sfcmem.RenderOptions{
		Workers: req.Workers,
		Shade:   req.Shade,
	})
	endKernel()
	if err != nil {
		return rcache.Value{}, err
	}
	endEncode := t.Stage("encode")
	v, err := encodeFrame(img, req.Format)
	endEncode()
	return v, err
}

func (s *server) handleRender(w http.ResponseWriter, r *http.Request) {
	s.renderReqs.Inc(0)
	t := obs.FromContext(r.Context())
	var req renderRequest
	endDecode := t.Stage("decode")
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req)
	endDecode()
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	endDigest := t.Stage("digest")
	plan, herr := s.planRender(req)
	if herr != nil {
		endDigest()
		http.Error(w, herr.msg, herr.code)
		return
	}
	req = plan.req
	etag := plan.etag
	if s.cache != nil {
		// A strong ETag is derived purely from the digest, so a match
		// can be answered 304 without the entry being resident.
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			endDigest()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	endDigest()

	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	// renderOnce is the full kernel path — dtype conversion, admission,
	// raycast, encode — run by exactly one request per digest when the
	// cache is on. Conversion sits inside so cache hits skip it too.
	// When it runs it runs on this request's goroutine (rcache leaders
	// compute inline), so the stage spans land in this request's trace;
	// a coalesced waiter's trace shows only the enclosing cache stage.
	renderOnce := func(ctx context.Context) (rcache.Value, error) {
		g := plan.vol.Grid
		if plan.dt != g.Dtype() {
			endResolve := t.Stage("resolve")
			g = g.Convert(plan.dt)
			endResolve()
		}
		release, err := s.admit(ctx)
		if err != nil {
			return rcache.Value{}, err
		}
		defer release()

		start := time.Now()
		v, err := s.rasterize(ctx, t, g, req, req.Width, req.Height, "kernel")
		if err != nil {
			return rcache.Value{}, err
		}
		s.renderLatency.Observe(time.Since(start))
		return v, nil
	}

	var v rcache.Value
	var out rcache.Outcome
	if s.cache != nil {
		// The cache stage wraps lookup, a coalesced wait on another
		// request's run, or (as leader) the whole renderOnce chain —
		// the nested spans and the X-Cache disposition tell which.
		endCache := t.Stage("cache")
		v, out, err = s.cache.Do(ctx, plan.key, renderOnce)
		endCache()
	} else {
		v, err = renderOnce(ctx)
	}
	if err != nil {
		if !s.admissionError(w, err) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.serveValue(w, v, etag, out)
}

// encodeFrame serializes a rendered image in the requested format into
// a cacheable response value.
func encodeFrame(img *sfcmem.Image, format string) (rcache.Value, error) {
	switch format {
	case "png":
		var buf bytes.Buffer
		if err := img.WritePNG(&buf); err != nil {
			return rcache.Value{}, err
		}
		return rcache.Value{Body: buf.Bytes(), ContentType: "image/png"}, nil
	case "raw":
		fb := make([]float32, 0, img.W*img.H*4)
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				c := img.At(x, y)
				fb = append(fb, c.R, c.G, c.B, c.A)
			}
		}
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, fb); err != nil {
			return rcache.Value{}, err
		}
		return rcache.Value{
			Body:        buf.Bytes(),
			ContentType: "application/octet-stream",
			Meta: map[string]string{
				"X-Image-Width":  fmt.Sprint(img.W),
				"X-Image-Height": fmt.Sprint(img.H),
			},
		}, nil
	}
	return rcache.Value{}, fmt.Errorf("unknown format %q", format)
}

type filterRequest struct {
	Src string `json:"src"`
	// Dst names the volume the filtered grid is stored under; default
	// src + ".filtered". The destination uses the source's layout.
	Dst string `json:"dst"`
	// Kernel is "bilateral" (default) or "gaussian".
	Kernel     string  `json:"kernel"`
	Radius     int     `json:"radius"`
	Axis       string  `json:"axis"` // "x" (default), "y", "z"
	SigmaRange float64 `json:"sigma_range"`
	Workers    int     `json:"workers"`
	// Dtype, when set, converts the source to that element type before
	// filtering; the destination volume is stored at the same dtype.
	Dtype      string `json:"dtype"`
	DeadlineMS int    `json:"deadline_ms"`
}

// filterPlan is a validated filter request with the source volume, the
// run's element type, the selected kernel, and the response digest
// resolved — shared by sync /filter and filter jobs. The digest ties
// the result to the source contents (name + generation), the full
// kernel parameters, and the destination name — part of the observable
// effect (which volume the result lands in). The destination's *state*
// cannot live in the key (the run itself bumps it); it is checked via
// dstHoldsResult instead.
type filterPlan struct {
	req    filterRequest // normalized: all defaults applied
	src    *store.Volume
	dt     sfcmem.Dtype
	axis   sfcmem.Axis
	kernel func(context.Context, *sfcmem.AnyGrid, *sfcmem.AnyGrid, sfcmem.FilterOptions) error
	key    string
	etag   string
}

// planFilter normalizes and validates req and computes its digest.
func (s *server) planFilter(req filterRequest) (*filterPlan, *httpErr) {
	if req.Dst == "" {
		req.Dst = req.Src + ".filtered"
	}
	if req.Kernel == "" {
		req.Kernel = "bilateral"
	}
	if req.Radius <= 0 {
		req.Radius = 2
	}
	if req.Workers <= 0 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	if req.Radius > 8 || req.Workers > 256 {
		return nil, &httpErr{http.StatusBadRequest, "radius or worker count out of range"}
	}
	var axis sfcmem.Axis
	switch req.Axis {
	case "", "x":
		axis = sfcmem.AxisX
	case "y":
		axis = sfcmem.AxisY
	case "z":
		axis = sfcmem.AxisZ
	default:
		return nil, &httpErr{http.StatusBadRequest, fmt.Sprintf("unknown axis %q (want x, y, or z)", req.Axis)}
	}
	kernel := sfcmem.BilateralAnyCtx
	switch req.Kernel {
	case "bilateral":
	case "gaussian":
		kernel = sfcmem.GaussianConvolveAnyCtx
	default:
		return nil, &httpErr{http.StatusBadRequest, fmt.Sprintf("unknown kernel %q (want bilateral or gaussian)", req.Kernel)}
	}
	src, herr := s.getVolume(req.Src)
	if herr != nil {
		return nil, herr
	}
	dt := src.Grid.Dtype()
	if req.Dtype != "" {
		var err error
		if dt, err = sfcmem.ParseDtype(req.Dtype); err != nil {
			return nil, &httpErr{http.StatusBadRequest, err.Error()}
		}
	}
	key := digest(s.nonce, "filter", "v1", src.Name, src.Gen, req.Dst, req.Kernel,
		req.Radius, axis, req.SigmaRange, dt)
	return &filterPlan{req: req, src: src, dt: dt, axis: axis, kernel: kernel, key: key, etag: etagFor(key)}, nil
}

// dstHoldsResult reports whether the destination volume currently
// holds this exact filter run's output. The endpoint's main effect is
// mutating dst, so a cached response — or a 304 — is only honest while
// that effect is still in place; an upload over dst clears its
// filterKey, forcing the next identical request back through the
// kernel. Stat answers from metadata, so the check never demand-loads
// a non-resident destination's bricks.
func (s *server) dstHoldsResult(p *filterPlan) bool {
	in, ok := s.store.Stat(p.req.Dst)
	return ok && in.FilterKey == p.key
}

// applyFilter runs the filter kernel over the (already dtype-resolved)
// source grid, stores the destination volume, and encodes the JSON
// response body — the section shared by sync /filter and filter jobs.
// The caller holds an admission slot.
func (s *server) applyFilter(ctx context.Context, t *obs.Trace, srcGrid *sfcmem.AnyGrid, p *filterPlan) (rcache.Value, error) {
	start := time.Now()
	dst := sfcmem.NewAnyGrid(srcGrid.Dtype(), srcGrid.Layout())
	endKernel := t.Stage("kernel")
	err := p.kernel(sfcmem.WithWorkObserver(ctx, t.Observer("pencil")), srcGrid, dst, sfcmem.FilterOptions{
		Radius:     p.req.Radius,
		Axis:       p.axis,
		SigmaRange: p.req.SigmaRange,
		Workers:    p.req.Workers,
	})
	endKernel()
	if err != nil {
		return rcache.Value{}, err
	}
	elapsed := time.Since(start)
	s.filterLatency.Observe(elapsed)
	endEncode := t.Stage("encode")
	defer endEncode()
	if err := s.store.Put(&store.Volume{
		Name:      p.req.Dst,
		Dataset:   p.src.Dataset + "+" + p.req.Kernel,
		Layout:    p.src.Layout,
		Grid:      dst,
		FilterKey: p.key,
	}); err != nil {
		return rcache.Value{}, err
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]any{ //nolint:errcheck // bytes.Buffer never fails
		"volume":  p.req.Dst,
		"dtype":   dst.Dtype().String(),
		"seconds": elapsed.Seconds(),
	})
	return rcache.Value{Body: buf.Bytes(), ContentType: "application/json"}, nil
}

func (s *server) handleFilter(w http.ResponseWriter, r *http.Request) {
	s.filterReqs.Inc(0)
	t := obs.FromContext(r.Context())
	var req filterRequest
	endDecode := t.Stage("decode")
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req)
	endDecode()
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	endDigest := t.Stage("digest")
	plan, herr := s.planFilter(req)
	endDigest()
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	etag := plan.etag
	if s.cache != nil {
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) && s.dstHoldsResult(plan) {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	ctx, cancel := s.requestCtx(r, plan.req.DeadlineMS)
	defer cancel()

	filterOnce := func(ctx context.Context) (rcache.Value, error) {
		srcGrid := plan.src.Grid
		if plan.dt != srcGrid.Dtype() {
			endResolve := t.Stage("resolve")
			srcGrid = srcGrid.Convert(plan.dt)
			endResolve()
		}
		release, err := s.admit(ctx)
		if err != nil {
			return rcache.Value{}, err
		}
		defer release()
		return s.applyFilter(ctx, t, srcGrid, plan)
	}

	var v rcache.Value
	var out rcache.Outcome
	if s.cache != nil {
		if !s.dstHoldsResult(plan) {
			// The response body may still be resident, but dst no longer
			// holds the output it describes (replaced by an upload since
			// the run). Drop the entry so Do re-runs the kernel and
			// re-stores dst instead of replaying a claim that is no
			// longer true.
			s.cache.Invalidate(plan.key)
		}
		endCache := t.Stage("cache")
		v, out, err = s.cache.Do(ctx, plan.key, filterOnce)
		endCache()
	} else {
		v, err = filterOnce(ctx)
	}
	if err != nil {
		if !s.admissionError(w, err) {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	s.serveValue(w, v, etag, out)
}

type createVolumeRequest struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Size    int    `json:"size"`
	Layout  string `json:"layout"`
	Dtype   string `json:"dtype"` // element type; default float32
}

func (s *server) handleCreateVolume(w http.ResponseWriter, r *http.Request) {
	var req createVolumeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Layout == "" {
		req.Layout = "zorder"
	}
	v, err := synthesizeVolume(req.Name, req.Dataset, req.Size, req.Layout, req.Dtype)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.respondStored(w, v)
}

// respondStored puts v and writes the 201 response with the stored
// volume's metadata. A failed Put — only possible with a disk tier —
// is a 500: the store kept its previous contents.
func (s *server) respondStored(w http.ResponseWriter, v *store.Volume) {
	if err := s.store.Put(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	in, ok := s.store.Stat(v.Name)
	if !ok { // racing DELETE won; report what this request stored
		in = store.InfoOf(v)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(in) //nolint:errcheck
}

// maxUploadBytes bounds a PUT /volumes/{name} payload: a 512³ float64
// volume is 1 GiB, far past what the in-memory store is for, so cap at
// 256 MiB (a 512³ uint16 volume, or 256³ float64 with headroom).
const maxUploadBytes = 256 << 20

// handleUploadVolume stores a client-supplied raw volume:
//
//	PUT /volumes/{name}?dtype=uint8&layout=zorder&nx=64&ny=64&nz=64
//
// with the body holding nx*ny*nz samples of the given dtype,
// little-endian, row-major. Truncated and oversized bodies are rejected
// with the expected and actual byte counts.
func (s *server) handleUploadVolume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		http.Error(w, "volume name must be non-empty", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	dtName := q.Get("dtype")
	if dtName == "" {
		dtName = "float32"
	}
	dt, err := sfcmem.ParseDtype(dtName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	layoutName := q.Get("layout")
	if layoutName == "" {
		layoutName = "zorder"
	}
	dims := [3]int{}
	for i, key := range []string{"nx", "ny", "nz"} {
		n, err := strconv.Atoi(q.Get(key))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s %q", key, q.Get(key)), http.StatusBadRequest)
			return
		}
		if n < 2 || n > 512 {
			http.Error(w, fmt.Sprintf("%s %d out of range [2,512]", key, n), http.StatusBadRequest)
			return
		}
		dims[i] = n
	}
	if int64(dims[0])*int64(dims[1])*int64(dims[2])*int64(dt.Size()) > maxUploadBytes {
		http.Error(w, fmt.Sprintf("volume exceeds the %d-byte upload limit", maxUploadBytes), http.StatusRequestEntityTooLarge)
		return
	}
	// Spec-aware parse after the dims are known: a bit-interleave layout
	// ("bit:yxzyxz…") validates against the extents it must address.
	l, err := sfcmem.ParseLayoutSpec(layoutName, dims[0], dims[1], dims[2])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g, err := sfcmem.LoadRawAny(http.MaxBytesReader(w, r.Body, maxUploadBytes), dt, l)
	if err != nil {
		// Truncation/oversize errors name expected vs actual byte counts.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.respondStored(w, &store.Volume{Name: name, Dataset: "upload", Layout: l.Name(), Grid: g})
}

// handleDeleteVolume removes a volume from every storage tier. The
// name's generation floor survives (in memory, and on disk as a
// tombstone manifest when -data-dir is set), so a later re-create gets
// a strictly higher generation and stale ETags can never validate.
func (s *server) handleDeleteVolume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			http.Error(w, fmt.Sprintf("unknown volume %q", name), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleListVolumes(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.store.List()) //nolint:errcheck
}

// handleHealthz is the liveness probe: 200 for as long as the process
// can serve HTTP at all, including while draining — a draining process
// is still alive and must not be restarted mid-drain. Routability is
// /readyz's question.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 until the volume store is
// populated and again from the moment shutdown begins, so a load
// balancer stops routing here during the drain while in-flight
// requests finish.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "volume store not initialized", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}
