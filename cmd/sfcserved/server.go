package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"sfcmem"
	"sfcmem/internal/metrics"
)

// server holds the request-service state: the volume store, the metrics
// registry, and the two-stage admission gate.
//
// Admission works in two stages so load sheds at the door instead of
// piling up in goroutines. queue has capacity slots+depth and is taken
// with a non-blocking send: failure means the service is saturated past
// its queueing allowance and the request is refused with 429 before any
// kernel work. run has capacity slots and is taken with a blocking send
// racing the request's deadline: holding it is the right to occupy
// kernel workers. A request that times out while queued has consumed
// nothing but its queue token.
type server struct {
	store *volumeStore
	reg   *metrics.Registry

	queue chan struct{}
	run   chan struct{}

	defaultDeadline time.Duration
	maxDeadline     time.Duration
	draining        atomic.Bool
	// ready flips to true once the volume store is populated and the
	// service is willing to take traffic; /readyz reports 503 until then
	// and again once draining starts. /healthz stays 200 throughout —
	// liveness and routability are separate questions.
	ready atomic.Bool

	// renderImage is the kernel invocation behind POST /render,
	// replaceable in tests to make admission behaviour deterministic.
	renderImage func(ctx context.Context, vol *sfcmem.AnyGrid, cam sfcmem.Camera, tf *sfcmem.TransferFunc, o sfcmem.RenderOptions) (*sfcmem.Image, error)

	renderReqs    *metrics.Counter
	filterReqs    *metrics.Counter
	rejected      *metrics.Counter
	deadlineMiss  *metrics.Counter
	renderLatency *metrics.Histogram
	filterLatency *metrics.Histogram
}

func newServer(store *volumeStore, reg *metrics.Registry, slots, depth int, defaultDeadline, maxDeadline time.Duration) *server {
	s := &server{
		store:           store,
		reg:             reg,
		queue:           make(chan struct{}, slots+depth),
		run:             make(chan struct{}, slots),
		defaultDeadline: defaultDeadline,
		maxDeadline:     maxDeadline,
		renderImage:     sfcmem.RenderAnyCtx,
		renderReqs:      reg.Counter("render.requests", 1),
		filterReqs:      reg.Counter("filter.requests", 1),
		rejected:        reg.Counter("admission.rejected", 1),
		deadlineMiss:    reg.Counter("deadline.exceeded", 1),
		renderLatency:   reg.Histogram("render.latency"),
		filterLatency:   reg.Histogram("filter.latency"),
	}
	reg.Register("admission.queued", metrics.GaugeFunc(func() any { return len(s.queue) }))
	reg.Register("admission.running", metrics.GaugeFunc(func() any { return len(s.run) }))
	return s
}

// mux routes the request-service API (the ops endpoints live on their
// own mux; see newApp).
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /render", s.handleRender)
	m.HandleFunc("POST /filter", s.handleFilter)
	m.HandleFunc("GET /volumes", s.handleListVolumes)
	m.HandleFunc("POST /volumes", s.handleCreateVolume)
	m.HandleFunc("PUT /volumes/{name}", s.handleUploadVolume)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /readyz", s.handleReadyz)
	return m
}

// errBusy reports an admission-queue overflow.
var errBusy = errors.New("admission queue full")

// admit runs the two-stage gate. On success the caller holds a run slot
// and must invoke the returned release. errBusy means shed the request;
// a context error means the deadline expired while queued.
func (s *server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, errBusy
	}
	select {
	case s.run <- struct{}{}:
		return func() { <-s.run; <-s.queue }, nil
	case <-ctx.Done():
		<-s.queue
		return nil, ctx.Err()
	}
}

// requestCtx derives the per-request context: the client's deadline_ms
// clamped to the configured maximum, or the default when unset. It
// chains off the connection context, so a client hanging up cancels the
// kernel too.
func (s *server) requestCtx(r *http.Request, deadlineMS int) (context.Context, context.CancelFunc) {
	d := s.defaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.maxDeadline {
		d = s.maxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// admissionError writes the HTTP response for a failed admit or a
// kernel aborted by its context, and returns true if err was one of
// those. Unrecognised errors are left for the caller.
func (s *server) admissionError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Inc(0)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server busy: admission queue full", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineMiss.Inc(0)
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client hung up (or the connection died); the status is
		// a formality nobody will read.
		http.Error(w, "request cancelled", http.StatusServiceUnavailable)
	default:
		return false
	}
	return true
}

type renderRequest struct {
	Volume string `json:"volume"`
	// View/Views select a camera on the standard orbit, matching the
	// paper's harness: view v of n evenly spaced azimuths.
	View    int  `json:"view"`
	Views   int  `json:"views"`
	Width   int  `json:"width"`
	Height  int  `json:"height"`
	Workers int  `json:"workers"`
	Shade   bool `json:"shade"`
	// Format is "png" (default) or "raw": raw is the float32 RGBA
	// frame, little-endian, row-major.
	Format string `json:"format"`
	// Dtype, when set, renders the volume converted to that element
	// type (e.g. "uint8"); default is the volume's stored dtype.
	Dtype      string `json:"dtype"`
	DeadlineMS int    `json:"deadline_ms"`
}

func (s *server) handleRender(w http.ResponseWriter, r *http.Request) {
	s.renderReqs.Inc(0)
	var req renderRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Views <= 0 {
		req.Views = 24
	}
	if req.Width <= 0 {
		req.Width = 256
	}
	if req.Height <= 0 {
		req.Height = 256
	}
	if req.Workers <= 0 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	if req.Width > 4096 || req.Height > 4096 || req.Workers > 256 {
		http.Error(w, "image or worker count out of range", http.StatusBadRequest)
		return
	}
	if req.Format == "" {
		req.Format = "png"
	}
	if req.Format != "png" && req.Format != "raw" {
		http.Error(w, fmt.Sprintf("unknown format %q (want png or raw)", req.Format), http.StatusBadRequest)
		return
	}
	vol, ok := s.store.get(req.Volume)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown volume %q", req.Volume), http.StatusNotFound)
		return
	}
	g := vol.grid
	if req.Dtype != "" {
		dt, err := sfcmem.ParseDtype(req.Dtype)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if dt != g.Dtype() {
			g = g.Convert(dt)
		}
	}

	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.admissionError(w, err)
		return
	}
	defer release()

	start := time.Now()
	nx, ny, nz := g.Dims()
	cam := sfcmem.Orbit(req.View, req.Views, nx, ny, nz, req.Width, req.Height)
	img, err := s.renderImage(ctx, g, cam, sfcmem.DefaultTransferFunc(), sfcmem.RenderOptions{
		Workers: req.Workers,
		Shade:   req.Shade,
	})
	if err != nil {
		if !s.admissionError(w, err) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.renderLatency.Observe(time.Since(start))

	switch req.Format {
	case "png":
		w.Header().Set("Content-Type", "image/png")
		img.WritePNG(w) //nolint:errcheck // headers are out; nothing to report to
	case "raw":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Image-Width", fmt.Sprint(img.W))
		w.Header().Set("X-Image-Height", fmt.Sprint(img.H))
		buf := make([]float32, 0, img.W*img.H*4)
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				c := img.At(x, y)
				buf = append(buf, c.R, c.G, c.B, c.A)
			}
		}
		binary.Write(w, binary.LittleEndian, buf) //nolint:errcheck // as above
	}
}

type filterRequest struct {
	Src string `json:"src"`
	// Dst names the volume the filtered grid is stored under; default
	// src + ".filtered". The destination uses the source's layout.
	Dst string `json:"dst"`
	// Kernel is "bilateral" (default) or "gaussian".
	Kernel     string  `json:"kernel"`
	Radius     int     `json:"radius"`
	Axis       string  `json:"axis"` // "x" (default), "y", "z"
	SigmaRange float64 `json:"sigma_range"`
	Workers    int     `json:"workers"`
	// Dtype, when set, converts the source to that element type before
	// filtering; the destination volume is stored at the same dtype.
	Dtype      string `json:"dtype"`
	DeadlineMS int    `json:"deadline_ms"`
}

func (s *server) handleFilter(w http.ResponseWriter, r *http.Request) {
	s.filterReqs.Inc(0)
	var req filterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Dst == "" {
		req.Dst = req.Src + ".filtered"
	}
	if req.Kernel == "" {
		req.Kernel = "bilateral"
	}
	if req.Radius <= 0 {
		req.Radius = 2
	}
	if req.Workers <= 0 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	if req.Radius > 8 || req.Workers > 256 {
		http.Error(w, "radius or worker count out of range", http.StatusBadRequest)
		return
	}
	var axis sfcmem.Axis
	switch req.Axis {
	case "", "x":
		axis = sfcmem.AxisX
	case "y":
		axis = sfcmem.AxisY
	case "z":
		axis = sfcmem.AxisZ
	default:
		http.Error(w, fmt.Sprintf("unknown axis %q (want x, y, or z)", req.Axis), http.StatusBadRequest)
		return
	}
	kernel := sfcmem.BilateralAnyCtx
	switch req.Kernel {
	case "bilateral":
	case "gaussian":
		kernel = sfcmem.GaussianConvolveAnyCtx
	default:
		http.Error(w, fmt.Sprintf("unknown kernel %q (want bilateral or gaussian)", req.Kernel), http.StatusBadRequest)
		return
	}
	src, ok := s.store.get(req.Src)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown volume %q", req.Src), http.StatusNotFound)
		return
	}
	srcGrid := src.grid
	if req.Dtype != "" {
		dt, err := sfcmem.ParseDtype(req.Dtype)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if dt != srcGrid.Dtype() {
			srcGrid = srcGrid.Convert(dt)
		}
	}

	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.admissionError(w, err)
		return
	}
	defer release()

	start := time.Now()
	dst := sfcmem.NewAnyGrid(srcGrid.Dtype(), srcGrid.Layout())
	err = kernel(ctx, srcGrid, dst, sfcmem.FilterOptions{
		Radius:     req.Radius,
		Axis:       axis,
		SigmaRange: req.SigmaRange,
		Workers:    req.Workers,
	})
	if err != nil {
		if !s.admissionError(w, err) {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	elapsed := time.Since(start)
	s.filterLatency.Observe(elapsed)
	s.store.put(&storedVolume{
		name:    req.Dst,
		dataset: src.dataset + "+" + req.Kernel,
		layout:  src.layout,
		grid:    dst,
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"volume":  req.Dst,
		"dtype":   dst.Dtype().String(),
		"seconds": elapsed.Seconds(),
	})
}

type createVolumeRequest struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Size    int    `json:"size"`
	Layout  string `json:"layout"`
	Dtype   string `json:"dtype"` // element type; default float32
}

func (s *server) handleCreateVolume(w http.ResponseWriter, r *http.Request) {
	var req createVolumeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Layout == "" {
		req.Layout = "zorder"
	}
	v, err := synthesizeVolume(req.Name, req.Dataset, req.Size, req.Layout, req.Dtype)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.store.put(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(v.info()) //nolint:errcheck
}

// maxUploadBytes bounds a PUT /volumes/{name} payload: a 512³ float64
// volume is 1 GiB, far past what the in-memory store is for, so cap at
// 256 MiB (a 512³ uint16 volume, or 256³ float64 with headroom).
const maxUploadBytes = 256 << 20

// handleUploadVolume stores a client-supplied raw volume:
//
//	PUT /volumes/{name}?dtype=uint8&layout=zorder&nx=64&ny=64&nz=64
//
// with the body holding nx*ny*nz samples of the given dtype,
// little-endian, row-major. Truncated and oversized bodies are rejected
// with the expected and actual byte counts.
func (s *server) handleUploadVolume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		http.Error(w, "volume name must be non-empty", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	dtName := q.Get("dtype")
	if dtName == "" {
		dtName = "float32"
	}
	dt, err := sfcmem.ParseDtype(dtName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	layoutName := q.Get("layout")
	if layoutName == "" {
		layoutName = "zorder"
	}
	kind, err := sfcmem.ParseLayout(layoutName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dims := [3]int{}
	for i, key := range []string{"nx", "ny", "nz"} {
		n, err := strconv.Atoi(q.Get(key))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s %q", key, q.Get(key)), http.StatusBadRequest)
			return
		}
		if n < 2 || n > 512 {
			http.Error(w, fmt.Sprintf("%s %d out of range [2,512]", key, n), http.StatusBadRequest)
			return
		}
		dims[i] = n
	}
	if int64(dims[0])*int64(dims[1])*int64(dims[2])*int64(dt.Size()) > maxUploadBytes {
		http.Error(w, fmt.Sprintf("volume exceeds the %d-byte upload limit", maxUploadBytes), http.StatusRequestEntityTooLarge)
		return
	}
	l := sfcmem.NewLayout(kind, dims[0], dims[1], dims[2])
	g, err := sfcmem.LoadRawAny(http.MaxBytesReader(w, r.Body, maxUploadBytes), dt, l)
	if err != nil {
		// Truncation/oversize errors name expected vs actual byte counts.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	v := &storedVolume{name: name, dataset: "upload", layout: layoutName, grid: g}
	s.store.put(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(v.info()) //nolint:errcheck
}

func (s *server) handleListVolumes(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.store.list()) //nolint:errcheck
}

// handleHealthz is the liveness probe: 200 for as long as the process
// can serve HTTP at all, including while draining — a draining process
// is still alive and must not be restarted mid-drain. Routability is
// /readyz's question.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 until the volume store is
// populated and again from the moment shutdown begins, so a load
// balancer stops routing here during the drain while in-flight
// requests finish.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "volume store not initialized", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}
