package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sfcmem"
)

// storedVolume is one named volume in the in-memory store. The grid is
// immutable once stored — filters write into a fresh grid registered
// under a new name — so concurrent renders can share it without locks.
type storedVolume struct {
	name    string
	dataset string // "plume", "phantom", "upload", or "<src>+<kernel>"
	layout  string // layout name as given in the spec
	grid    *sfcmem.AnyGrid
	// gen is the volume's generation: 1 on first store, +1 every time
	// put replaces the name. Response-cache digests embed it, so
	// replacing a volume makes every cached result for the old contents
	// unreachable without an explicit purge. Assigned by put; immutable
	// afterwards.
	gen uint64
	// filterKey, when non-empty, is the response-cache digest of the
	// /filter run that produced this volume. handleFilter compares it
	// against a request's digest to decide whether the destination
	// still holds that run's output; uploads and synthesized volumes
	// leave it empty, which invalidates any cached filter response
	// targeting the name.
	filterKey string
}

// volumeInfo is a volume's JSON form for the /volumes listing.
type volumeInfo struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Layout  string `json:"layout"`
	Dtype   string `json:"dtype"`
	Nx      int    `json:"nx"`
	Ny      int    `json:"ny"`
	Nz      int    `json:"nz"`
	Bytes   int64  `json:"bytes"`
	Gen     uint64 `json:"gen"`
}

func (v *storedVolume) info() volumeInfo {
	nx, ny, nz := v.grid.Dims()
	return volumeInfo{
		Name: v.name, Dataset: v.dataset, Layout: v.layout,
		Dtype: v.grid.Dtype().String(),
		Nx:    nx, Ny: ny, Nz: nz,
		Bytes: v.grid.Bytes(),
		Gen:   v.gen,
	}
}

// volumeStore maps names to volumes. Lookups vastly outnumber stores
// (every request resolves a name; only /volumes and /filter add one), so
// an RWMutex over a plain map is plenty.
type volumeStore struct {
	mu   sync.RWMutex
	vols map[string]*storedVolume
}

func newVolumeStore() *volumeStore {
	return &volumeStore{vols: make(map[string]*storedVolume)}
}

func (s *volumeStore) get(name string) (*storedVolume, bool) {
	s.mu.RLock()
	v, ok := s.vols[name]
	s.mu.RUnlock()
	return v, ok
}

// put stores v, replacing any volume of the same name and assigning
// the next generation for that name. Names are never deleted, so the
// counter is monotonic for the life of the process.
func (s *volumeStore) put(v *storedVolume) {
	s.mu.Lock()
	if old, ok := s.vols[v.name]; ok {
		v.gen = old.gen + 1
	} else {
		v.gen = 1
	}
	s.vols[v.name] = v
	s.mu.Unlock()
}

// list returns every volume's info, sorted by name.
func (s *volumeStore) list() []volumeInfo {
	s.mu.RLock()
	out := make([]volumeInfo, 0, len(s.vols))
	for _, v := range s.vols {
		out = append(out, v.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetSeed fixes the synthetic datasets so repeated service starts
// (and the CI smoke job) render identical frames.
const datasetSeed = 1

// synthesizeVolume builds a named volume from a dataset name, cube edge,
// layout name and dtype name — the shared backend of the -volume flag
// and the POST /volumes handler. An empty dtype means float32.
func synthesizeVolume(name, dataset string, size int, layout, dtype string) (*storedVolume, error) {
	if name == "" {
		return nil, fmt.Errorf("volume name must be non-empty")
	}
	if size < 2 || size > 512 {
		return nil, fmt.Errorf("volume size %d out of range [2,512]", size)
	}
	kind, err := sfcmem.ParseLayout(layout)
	if err != nil {
		return nil, err
	}
	if dtype == "" {
		dtype = "float32"
	}
	dt, err := sfcmem.ParseDtype(dtype)
	if err != nil {
		return nil, err
	}
	l := sfcmem.NewLayout(kind, size, size, size)
	var g *sfcmem.AnyGrid
	switch dataset {
	case "plume":
		g = sfcmem.CombustionPlumeAny(dt, l, datasetSeed)
	case "phantom":
		g = sfcmem.MRIPhantomAny(dt, l, datasetSeed, 0.02)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want plume or phantom)", dataset)
	}
	return &storedVolume{name: name, dataset: dataset, layout: layout, grid: g}, nil
}

// parseVolumeSpec parses one -volume flag value of the form
// name=dataset:size:layout[:dtype], e.g. demo=plume:64:zorder or
// demo8=plume:64:zorder:uint8. The dtype defaults to float32.
func parseVolumeSpec(spec string) (*storedVolume, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("volume spec %q: want name=dataset:size:layout[:dtype]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return nil, fmt.Errorf("volume spec %q: want name=dataset:size:layout[:dtype]", spec)
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("volume spec %q: bad size %q", spec, parts[1])
	}
	dtype := ""
	if len(parts) == 4 {
		dtype = parts[3]
	}
	v, err := synthesizeVolume(name, parts[0], size, parts[2], dtype)
	if err != nil {
		return nil, fmt.Errorf("volume spec %q: %w", spec, err)
	}
	return v, nil
}
