package main

import (
	"fmt"
	"strconv"
	"strings"

	"sfcmem"
	"sfcmem/internal/store"
)

// Volume storage lives in internal/store behind the pluggable
// store.VolumeStore interface (RAM-only via store.NewMemory, tiered
// RAM-over-bricks via store.Open when -data-dir is set). This file
// keeps only the serving-side volume construction: synthetic datasets
// and the -volume spec grammar.

// datasetSeed fixes the synthetic datasets so repeated service starts
// (and the CI smoke job) render identical frames.
const datasetSeed = 1

// synthesizeVolume builds a named volume from a dataset name, cube edge,
// layout name and dtype name — the shared backend of the -volume flag
// and the POST /volumes handler. An empty dtype means float32.
func synthesizeVolume(name, dataset string, size int, layout, dtype string) (*store.Volume, error) {
	if name == "" {
		return nil, fmt.Errorf("volume name must be non-empty")
	}
	if size < 2 || size > 512 {
		return nil, fmt.Errorf("volume size %d out of range [2,512]", size)
	}
	l, err := sfcmem.ParseLayoutSpec(layout, size, size, size)
	if err != nil {
		return nil, err
	}
	if dtype == "" {
		dtype = "float32"
	}
	dt, err := sfcmem.ParseDtype(dtype)
	if err != nil {
		return nil, err
	}
	var g *sfcmem.AnyGrid
	switch dataset {
	case "plume":
		g = sfcmem.CombustionPlumeAny(dt, l, datasetSeed)
	case "phantom":
		g = sfcmem.MRIPhantomAny(dt, l, datasetSeed, 0.02)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want plume or phantom)", dataset)
	}
	// Store the layout's canonical name, not the request's spelling:
	// aliases ("z") normalize, and a bit spec persists with exactly the
	// string ParseLayoutSpec reconstructs from on reload.
	return &store.Volume{Name: name, Dataset: dataset, Layout: l.Name(), Grid: g}, nil
}

// parseVolumeSpec parses one -volume flag value of the form
// name=dataset:size:layout[:dtype], e.g. demo=plume:64:zorder or
// demo8=plume:64:zorder:uint8. The dtype defaults to float32. A
// parameterized bit-interleave layout carries its own colon
// ("bit:xyzxyzxyz"), so the layout field spans two parts when it starts
// with "bit": demo=plume:64:bit:xyzxyzxyzxyzxyzxyz:uint8.
func parseVolumeSpec(spec string) (*store.Volume, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("volume spec %q: want name=dataset:size:layout[:dtype]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) >= 4 && strings.EqualFold(parts[2], "bit") {
		parts = append(parts[:2], append([]string{parts[2] + ":" + parts[3]}, parts[4:]...)...)
	}
	if len(parts) != 3 && len(parts) != 4 {
		return nil, fmt.Errorf("volume spec %q: want name=dataset:size:layout[:dtype]", spec)
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("volume spec %q: bad size %q", spec, parts[1])
	}
	dtype := ""
	if len(parts) == 4 {
		dtype = parts[3]
	}
	v, err := synthesizeVolume(name, parts[0], size, parts[2], dtype)
	if err != nil {
		return nil, fmt.Errorf("volume spec %q: %w", spec, err)
	}
	return v, nil
}
