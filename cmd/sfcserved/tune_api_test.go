package main

// End-to-end coverage of POST /volumes/{name}/tune: the background
// tune job finds an interleave no worse than Z order, installs it in
// the manifest under a bumped generation, renders byte-identically to
// the pre-tune volume, survives a restart from the disk tier, and
// shows up in the tune.* metrics family.

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"sfcmem/internal/store"
)

// postTune submits a tune job for the named volume and returns the
// accepted job ID.
func postTune(t *testing.T, base, name string, req tuneRequest) string {
	t.Helper()
	resp := postJSON(t, base+"/volumes/"+name+"/tune", req)
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST tune: status %d body %s", resp.StatusCode, b)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.ID == "" {
		t.Fatalf("tune response %s (err %v)", b, err)
	}
	return acc.ID
}

// watchTune follows the job's SSE stream to its terminal event and
// returns the decoded "result" payload.
func watchTune(t *testing.T, base, id string) tuneOutcome {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var out tuneOutcome
	haveResult := false
	for {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatalf("SSE stream ended early: %v", err)
		}
		switch ev.event {
		case "result":
			if err := json.Unmarshal(ev.data, &out); err != nil {
				t.Fatalf("result payload %s: %v", ev.data, err)
			}
			haveResult = true
		case "failed", "cancelled":
			t.Fatalf("tune job %s: %s", ev.event, ev.data)
		case "done":
			if !haveResult {
				t.Fatal("job done without a result event")
			}
			return out
		}
	}
}

// volumeInfo fetches the /volumes listing entry for name.
func volumeInfo(t *testing.T, base, name string) store.Info {
	t.Helper()
	resp, err := http.Get(base + "/volumes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vols []store.Info
	if err := json.NewDecoder(resp.Body).Decode(&vols); err != nil {
		t.Fatal(err)
	}
	for _, v := range vols {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("volume %q not listed", name)
	return store.Info{}
}

func TestTuneEndToEnd(t *testing.T) {
	a, _, _ := startApp(t, testConfig()) // demo=plume:16:zorder
	base := "http://" + a.apiAddr()

	resp := renderRaw(t, a, "demo", "")
	before, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-tune render: status %d", resp.StatusCode)
	}

	id := postTune(t, base, "demo", tuneRequest{Seed: 1, Population: 6, Generations: 2})
	out := watchTune(t, base, id)

	if !strings.HasPrefix(out.Layout, "bit:") {
		t.Fatalf("tuned layout %q, want a bit: spec", out.Layout)
	}
	if out.Previous != "zorder" {
		t.Errorf("previous layout %q, want zorder", out.Previous)
	}
	if out.TunedMisses > out.ZOrderMisses {
		t.Errorf("tuned layout scored %d misses, worse than z-order's %d", out.TunedMisses, out.ZOrderMisses)
	}
	if !out.Applied || out.Candidates < 2 {
		t.Errorf("outcome %+v: want applied with several candidates", out)
	}

	// The winning layout is installed in the manifest under a bumped
	// generation.
	in := volumeInfo(t, base, "demo")
	if in.Layout != out.Layout {
		t.Errorf("manifest layout %q, want %q", in.Layout, out.Layout)
	}
	if in.Gen < 2 || out.Gen != in.Gen {
		t.Errorf("gen %d (result says %d), want a bump past 1", in.Gen, out.Gen)
	}

	// Re-layout is a pure copy: the post-tune render is byte-identical
	// (same sha256) to the pre-tune Z-order render.
	resp = renderRaw(t, a, "demo", "")
	after, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-tune render: status %d", resp.StatusCode)
	}
	if h1, h2 := sha256.Sum256(before), sha256.Sum256(after); h1 != h2 {
		t.Fatalf("tuned volume renders differently: %x vs %x", h1, h2)
	}

	// The tune.* metrics family recorded the run.
	mresp, err := http.Get("http://" + a.opsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	var reqs, applied struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(snap["tune.requests"], &reqs); err != nil || reqs.Total < 1 {
		t.Errorf("tune.requests = %s (err %v), want >= 1", snap["tune.requests"], err)
	}
	if err := json.Unmarshal(snap["tune.applied"], &applied); err != nil || applied.Total < 1 {
		t.Errorf("tune.applied = %s (err %v), want >= 1", snap["tune.applied"], err)
	}
}

func TestTuneNoApply(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()

	noApply := false
	id := postTune(t, base, "demo", tuneRequest{Population: 4, Generations: 1, Apply: &noApply})
	out := watchTune(t, base, id)
	if out.Applied || out.Gen != 0 {
		t.Errorf("apply=false outcome %+v: volume must be untouched", out)
	}
	if in := volumeInfo(t, base, "demo"); in.Layout != "zorder" || in.Gen != 1 {
		t.Errorf("apply=false changed the volume: %+v", in)
	}
}

func TestTuneValidation(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()

	cases := []struct {
		name string
		vol  string
		req  tuneRequest
		code int
	}{
		{"unknown volume", "nope", tuneRequest{}, http.StatusNotFound},
		{"bad kernel", "demo", tuneRequest{Kernel: "fft"}, http.StatusBadRequest},
		{"bad lane", "demo", tuneRequest{Priority: "urgent"}, http.StatusBadRequest},
		{"oversized search", "demo", tuneRequest{Population: 1000}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, base+"/volumes/"+c.vol+"/tune", c.req)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
}

// TestTunedVolumeRestartRoundTrip extends the persistence round-trip
// to a tuned layout: tune an uploaded volume on a disk-backed store
// (a -volume spec would be re-synthesized over the tuned copy at the
// next boot, so an upload is the name that must survive), drain,
// restart, and require (a) the manifest still carries the bit:
// interleave string and (b) the restarted render is byte-identical to
// the pre-restart one — the layout spec reconstructed exactly from
// the manifest.
func TestTunedVolumeRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir

	a1, cancel1, done1 := startApp(t, cfg)
	base1 := "http://" + a1.apiAddr()
	samples := make([]byte, 16*16*16)
	rng := rand.New(rand.NewSource(7))
	rng.Read(samples) //nolint:errcheck // never fails
	uploadRaw(t, a1, "up", 16, samples)
	id := postTune(t, base1, "up", tuneRequest{Seed: 1, Population: 6, Generations: 2})
	out := watchTune(t, base1, id)
	if !out.Applied || !strings.HasPrefix(out.Layout, "bit:") {
		t.Fatalf("tune outcome %+v: want an applied bit: layout", out)
	}
	resp := renderRaw(t, a1, "up", "")
	frame1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart render: status %d", resp.StatusCode)
	}
	cancel1()
	err := <-done1
	done1 <- err // put it back for startApp's cleanup
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	a2, _, _ := startApp(t, cfg)
	in, ok := a2.srv.store.Stat("up")
	if !ok || in.Layout != out.Layout {
		t.Fatalf("restarted Stat(up) = %+v, %v: want the tuned layout %q", in, ok, out.Layout)
	}
	resp = renderRaw(t, a2, "up", "")
	frame2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart render: status %d body %s", resp.StatusCode, frame2)
	}
	if h1, h2 := sha256.Sum256(frame1), sha256.Sum256(frame2); h1 != h2 {
		t.Fatalf("restart changed the tuned frame: %x vs %x", h1, h2)
	}
}
