package main

// Request-observability glue: the per-route instrumentation middleware
// (trace lifecycle, RED metrics, access logs), the response writer that
// captures status and byte counts, and the /version build-info surface.

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
	"time"

	"sfcmem/internal/metrics"
)

// statusClasses are the response classes counted per route. 3xx is
// included because conditional requests answer 304 on the cache path.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// routeStats is one route's RED instrumentation: request counts split
// by status class and the whole-request latency distribution (distinct
// from render.latency/filter.latency, which time only the kernel+encode
// section — the gap between the two is queueing, cache and transport).
type routeStats struct {
	classes map[string]*metrics.Counter
	latency *metrics.Histogram
}

// newRouteStats registers the http.<route>.* family in reg.
func newRouteStats(reg *metrics.Registry, route string) *routeStats {
	rs := &routeStats{classes: make(map[string]*metrics.Counter, len(statusClasses))}
	for _, c := range statusClasses {
		rs.classes[c] = reg.Counter("http."+route+"."+c, 1)
	}
	rs.latency = reg.Histogram("http." + route + ".latency")
	return rs
}

// observe records one completed request.
func (rs *routeStats) observe(status int, d time.Duration) {
	class := "5xx"
	switch {
	case status >= 200 && status < 300:
		class = "2xx"
	case status >= 300 && status < 400:
		class = "3xx"
	case status >= 400 && status < 500:
		class = "4xx"
	}
	rs.classes[class].Inc(0)
	rs.latency.Observe(d)
}

// statusWriter captures the status code and body size a handler wrote.
// WriteHeader-less handlers count as 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming responses (the
// /jobs SSE endpoint) actually leave the process event by event.
// Without this passthrough the wrapper hides the underlying
// http.Flusher and every instrumented handler's writes sit in the
// server's buffer until the handler returns — fatal for progressive
// delivery. Flushing commits the response, so an unset status counts
// as 200 from here on, matching net/http.
func (w *statusWriter) Flush() {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController,
// which walks Unwrap chains to find capabilities (deadlines, hijack)
// this wrapper doesn't re-implement.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with the request-observability envelope:
// it opens a trace (honoring inbound traceparent/X-Request-Id), stamps
// the response identity headers, runs the handler with the trace in its
// context, then records RED metrics, the access-log line, and the
// completed span tree. RED metrics are part of the metrics layer and
// stay on under -obs-off; only tracing and logging (the per-request
// work) ride on the hub.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rs := s.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t, ctx := s.hub.Start(r.Context(), route, r.Header)
		if t != nil {
			w.Header().Set("X-Request-Id", t.RequestID)
			w.Header().Set("Traceparent", t.Traceparent())
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		rs.observe(sw.status(), time.Since(start))
		s.hub.Finish(t, sw.status(), sw.bytes, sw.Header().Get("X-Cache"))
	}
}

// versionInfo collects the build identity from the binary itself:
// module version, toolchain, and VCS state when the build embedded
// them. Values the build did not stamp read "unknown" rather than
// vanishing, so log fields and labels are stable across build modes.
func versionInfo() map[string]string {
	info := map[string]string{
		"module_version": "unknown",
		"go_version":     "unknown",
		"vcs_revision":   "unknown",
		"vcs_modified":   "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info["go_version"] = bi.GoVersion
	if bi.Main.Version != "" {
		info["module_version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info["vcs_revision"] = s.Value
		case "vcs.modified":
			info["vcs_modified"] = s.Value
		}
	}
	return info
}

// handleVersion serves GET /version: the build identity as JSON. The
// same facts live in the metrics registry as build.info (and therefore
// in the Prometheus exposition as sfcserved_build_info).
func (s *server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(versionInfo()) //nolint:errcheck
}
