package main

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"sfcmem"
	"sfcmem/internal/store"
)

// testConfig binds both listeners to ephemeral ports with a small demo
// volume, so every test runs an isolated full service instance.
func testConfig() config {
	return config{
		addr:            "127.0.0.1:0",
		ops:             "127.0.0.1:0",
		volumes:         []string{"demo=plume:16:zorder"},
		slots:           2,
		queueDepth:      4,
		defaultDeadline: 30 * time.Second,
		maxDeadline:     2 * time.Minute,
		drainTimeout:    10 * time.Second,
		accessLog:       io.Discard, // obs tests substitute a buffer
	}
}

// startApp builds and serves an app, returning it with its cancel
// function and a channel carrying run's result. Cleanup tears the
// service down and fails the test if the drain errored.
func startApp(t *testing.T, cfg config) (*app, context.CancelFunc, chan error) {
	t.Helper()
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("app.run: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("app.run did not return after cancel")
		}
	})
	return a, cancel, done
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func TestConcurrentRendersServePNG(t *testing.T) {
	cfg := testConfig()
	const n = 8
	cfg.queueDepth = n // admit every concurrent request in this test
	a, _, _ := startApp(t, cfg)
	url := "http://" + a.apiAddr() + "/render"
	type result struct {
		status int
		body   []byte
		err    error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(view int) {
			resp := postJSON(t, url, renderRequest{Volume: "demo", View: view, Views: 8, Width: 48, Height: 48, Workers: 2})
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			results <- result{resp.StatusCode, body, err}
		}(i)
	}
	for i := 0; i < n; i++ {
		res := <-results
		if res.err != nil || res.status != http.StatusOK {
			t.Fatalf("render %d: status %d err %v body %s", i, res.status, res.err, res.body)
		}
		img, err := png.Decode(bytes.NewReader(res.body))
		if err != nil {
			t.Fatalf("render %d: not a PNG: %v", i, err)
		}
		if b := img.Bounds(); b.Dx() != 48 || b.Dy() != 48 {
			t.Errorf("render %d: %dx%d frame, want 48x48", i, b.Dx(), b.Dy())
		}
	}
}

func TestRenderRawFormat(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	resp := postJSON(t, "http://"+a.apiAddr()+"/render",
		renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1, Format: "raw"})
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := 16 * 16 * 4 * 4; len(body) != want {
		t.Errorf("raw frame is %d bytes, want %d", len(body), want)
	}
	if got := resp.Header.Get("X-Image-Width"); got != "16" {
		t.Errorf("X-Image-Width = %q", got)
	}
}

func TestRenderErrors(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()
	cases := []struct {
		req  renderRequest
		want int
	}{
		{renderRequest{Volume: "nope", Views: 8, Width: 16, Height: 16}, http.StatusNotFound},
		{renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Format: "bmp"}, http.StatusBadRequest},
		{renderRequest{Volume: "demo", Width: 1 << 20}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, base+"/render", c.req)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%+v: status %d, want %d", c.req, resp.StatusCode, c.want)
		}
	}
	// Method mismatch on a registered pattern.
	resp, err := http.Get(base + "/render")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /render: status %d, want 405", resp.StatusCode)
	}
}

// blockingHook replaces renderImage so a request parks inside the run
// slot until released, making admission behaviour deterministic.
type blockingHook struct {
	entered chan struct{}
	release chan struct{}
}

func newBlockingHook() *blockingHook {
	return &blockingHook{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (h *blockingHook) render(ctx context.Context, vol *sfcmem.AnyGrid, cam sfcmem.Camera, tf *sfcmem.TransferFunc, o sfcmem.RenderOptions) (*sfcmem.Image, error) {
	h.entered <- struct{}{}
	select {
	case <-h.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return sfcmem.RenderAnyCtx(ctx, vol, cam, tf, o)
}

// TestAdmissionOverflow429 fills one run slot and one queue slot, then
// checks the next request is shed with 429 + Retry-After — and that the
// two admitted requests still complete once unblocked.
func TestAdmissionOverflow429(t *testing.T) {
	cfg := testConfig()
	cfg.slots, cfg.queueDepth = 1, 1
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render // before run: no concurrent access yet
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	url := "http://" + a.apiAddr() + "/render"
	req := renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1}
	statuses := make(chan int, 2)
	do := func() {
		resp := postJSON(t, url, req)
		resp.Body.Close()
		statuses <- resp.StatusCode
	}
	go do() // A: takes the run slot, parks in the hook
	<-hook.entered
	go do() // B: takes the queue slot, waits for the run slot
	waitFor(t, "request queued", func() bool { return len(a.srv.queue) == 2 })

	resp := postJSON(t, url, req) // C: queue full
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(hook.release)
	for i := 0; i < 2; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", st)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

// TestDeadlineFailsFast sends a 1ms deadline on a render far too large
// to finish in that time: the service must answer 504 promptly and reap
// the request's goroutines.
func TestDeadlineFailsFast(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	url := "http://" + a.apiAddr() + "/render"
	// Warm up once so HTTP transport goroutines exist before the count.
	resp := postJSON(t, url, renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	before := runtime.NumGoroutine()

	start := time.Now()
	resp = postJSON(t, url, renderRequest{Volume: "demo", Views: 8, Width: 2048, Height: 2048, Workers: 2, DeadlineMS: 1})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Errorf("1ms deadline answered in %v, want prompt failure", elapsed)
	}
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines reaped", func() bool { return runtime.NumGoroutine() <= before })
}

// TestGracefulDrain cancels the app while a request is in flight: the
// request must still complete successfully and run must return nil.
func TestGracefulDrain(t *testing.T) {
	a, err := newApp(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	addr := a.apiAddr()
	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp := postJSON(t, "http://"+addr+"/render",
			renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		inflight <- result{resp.StatusCode, body}
	}()
	<-hook.entered

	cancel() // SIGTERM equivalent: begin the drain
	// The listener closes before in-flight work finishes: new
	// connections must start failing while our request is still parked.
	waitFor(t, "listener closed", func() bool {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})
	select {
	case res := <-inflight:
		t.Fatalf("in-flight request returned during drain: %d %s", res.status, res.body)
	default:
	}

	close(hook.release)
	res := <-inflight
	if res.status != http.StatusOK {
		t.Fatalf("drained request: status %d body %s", res.status, res.body)
	}
	if _, err := png.Decode(bytes.NewReader(res.body)); err != nil {
		t.Errorf("drained request did not deliver a PNG: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("app.run after drain: %v", err)
	}
}

func TestOpsEndpoints(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	api, ops := "http://"+a.apiAddr(), "http://"+a.opsAddr()

	resp := postJSON(t, api+"/render", renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
	resp.Body.Close()

	resp, err := http.Get(ops + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/metrics Cache-Control %q, want no-store", cc)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	for _, key := range []string{"render.requests", "render.latency", "admission.rejected", "admission.queued"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}

	hresp, err := http.Get(api + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hresp.StatusCode)
	}
}

func TestFilterAndVolumeLifecycle(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()

	resp := postJSON(t, base+"/volumes", createVolumeRequest{Name: "ph", Dataset: "phantom", Size: 16, Layout: "array"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create volume: status %d", resp.StatusCode)
	}

	resp = postJSON(t, base+"/filter", filterRequest{Src: "ph", Kernel: "gaussian", Radius: 1, Workers: 2})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filter: status %d body %s", resp.StatusCode, body)
	}
	var fr struct {
		Volume string `json:"volume"`
	}
	if err := json.Unmarshal(body, &fr); err != nil || fr.Volume != "ph.filtered" {
		t.Fatalf("filter response %s (err %v)", body, err)
	}

	resp, err := http.Get(base + "/volumes")
	if err != nil {
		t.Fatal(err)
	}
	var vols []store.Info
	if err := json.NewDecoder(resp.Body).Decode(&vols); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := make([]string, len(vols))
	for i, v := range vols {
		names[i] = v.Name
	}
	for _, want := range []string{"demo", "ph", "ph.filtered"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("volume %q missing from listing %v", want, names)
		}
	}

	// The filtered volume renders like any other.
	resp = postJSON(t, base+"/render", renderRequest{Volume: "ph.filtered", Views: 8, Width: 16, Height: 16, Workers: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("render of filtered volume: status %d", resp.StatusCode)
	}

	// Filter error paths.
	for _, c := range []struct {
		req  filterRequest
		want int
	}{
		{filterRequest{Src: "nope"}, http.StatusNotFound},
		{filterRequest{Src: "ph", Kernel: "median"}, http.StatusBadRequest},
		{filterRequest{Src: "ph", Axis: "w"}, http.StatusBadRequest},
	} {
		resp := postJSON(t, base+"/filter", c.req)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%+v: status %d, want %d", c.req, resp.StatusCode, c.want)
		}
	}
}

// TestRunExitCodes drives the CLI entry point itself.
func TestRunExitCodes(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-volume", "broken"}, &stderr); code != 1 {
		t.Errorf("bad volume spec: exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-slots", "0"}, &stderr); code != 2 {
		t.Errorf("zero slots: exit %d, want 2", code)
	}
	// A cancelled context drains immediately: clean exit 0.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stderr.Reset()
	code := run(ctx, []string{"-addr", "127.0.0.1:0", "-ops", "127.0.0.1:0", "-volume", "tiny=plume:8:array"}, &stderr)
	if code != 0 {
		t.Errorf("cancelled run: exit %d, want 0 (stderr %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("stderr lacks drain notice: %q", stderr.String())
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
