package main

// The async jobs API: POST /jobs enqueues a render or filter through
// the internal/jobs batching scheduler, GET /jobs/{id} reports status,
// GET /jobs/{id}/events streams progressive results over SSE (for
// render jobs: a coarse preview from the multires subsample, then the
// full-resolution refinement), and DELETE /jobs/{id} cancels.
//
// Jobs compatible on (volume, generation, dtype, coarse level) batch
// together: the batch resolves the dtype-converted flat view and the
// coarse subsample once and every job in it reuses them — the
// amortization the synchronous path cannot offer, because it must
// answer each request as it arrives. A render job's final frame is
// stored in the response cache under the same digest a synchronous
// /render would compute, so the job warms the cache for everyone.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sfcmem"
	"sfcmem/internal/jobs"
	"sfcmem/internal/metrics"
	"sfcmem/internal/obs"
	"sfcmem/internal/rcache"
)

// statusClientClosedRequest is nginx's non-standard code for a request
// the client abandoned; job traces use it to mark cancellations apart
// from failures in /ops/trace/recent.
const statusClientClosedRequest = 499

// enableJobs wires the batching job manager and publishes the jobs.*
// metrics family: lifecycle counters, queue-depth gauges, and the
// time-to-first-coarse-frame histogram.
func (s *server) enableJobs(cfg jobs.Config) {
	s.jobs = jobs.New(cfg)
	stat := func(f func(jobs.Stats) any) metrics.GaugeFunc {
		return func() any { return f(s.jobs.Stats()) }
	}
	s.reg.Register("jobs.submitted", stat(func(st jobs.Stats) any { return st.Submitted }))
	s.reg.Register("jobs.done", stat(func(st jobs.Stats) any { return st.Done }))
	s.reg.Register("jobs.failed", stat(func(st jobs.Stats) any { return st.Failed }))
	s.reg.Register("jobs.cancelled", stat(func(st jobs.Stats) any { return st.Cancelled }))
	s.reg.Register("jobs.batches", stat(func(st jobs.Stats) any { return st.Batches }))
	s.reg.Register("jobs.pending", stat(func(st jobs.Stats) any { return st.Pending }))
	s.reg.Register("jobs.ready", stat(func(st jobs.Stats) any { return st.Ready }))
	s.reg.Register("jobs.running", stat(func(st jobs.Stats) any { return st.Running }))
	s.jobTTFB = s.reg.Histogram("jobs.ttfb")
}

// jobRequest is the POST /jobs body: exactly one operation (render or
// filter) plus job-level scheduling fields.
type jobRequest struct {
	// Op is "render" or "filter"; defaults to whichever operation body
	// is present.
	Op string `json:"op"`
	// Priority selects the scheduling lane: "interactive" (default)
	// preempts "bulk" at every dispatch decision.
	Priority string `json:"priority"`
	// CoarseLevel is the multiresolution level of a render job's
	// preview pass: the volume is subsampled by 2^level per axis and
	// rendered at width>>level × height>>level before the full-
	// resolution refinement. 0 disables the preview; default 2.
	CoarseLevel *int `json:"coarse_level"`

	Render *renderRequest `json:"render"`
	Filter *filterRequest `json:"filter"`
}

// frameEvent is the SSE payload of a render job's "coarse" and
// "refined" events: the encoded frame inline (base64) plus enough
// metadata to display it without another round trip.
type frameEvent struct {
	Level       int    `json:"level"` // subsample level; 0 = full resolution
	Width       int    `json:"width"`
	Height      int    `json:"height"`
	ContentType string `json:"content_type"`
	ETag        string `json:"etag,omitempty"` // refined only: the digest a sync /render would hit
	Frame       string `json:"frame"`          // base64 of the encoded frame
}

// renderShared is a render batch's Setup product: the dtype-converted
// volume and its coarse subsample, resolved once per batch and shared
// by every job in it.
type renderShared struct {
	full   *sfcmem.AnyGrid
	coarse *sfcmem.AnyGrid // nil when the batch's coarse level is 0
}

func (s *server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "jobs disabled", http.StatusServiceUnavailable)
		return
	}
	var req jobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	lane, err := jobs.ParseLane(req.Priority)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	coarseLevel := 2
	if req.CoarseLevel != nil {
		coarseLevel = *req.CoarseLevel
	}
	if coarseLevel < 0 || coarseLevel > 4 {
		http.Error(w, fmt.Sprintf("coarse_level %d out of range [0,4]", coarseLevel), http.StatusBadRequest)
		return
	}
	op := req.Op
	if op == "" {
		switch {
		case req.Render != nil:
			op = "render"
		case req.Filter != nil:
			op = "filter"
		}
	}
	var spec jobs.Spec
	var herr *httpErr
	switch op {
	case "render":
		if req.Render == nil {
			http.Error(w, `"render" body required for a render job`, http.StatusBadRequest)
			return
		}
		spec, herr = s.renderJobSpec(*req.Render, lane, coarseLevel, r.Header)
	case "filter":
		if req.Filter == nil {
			http.Error(w, `"filter" body required for a filter job`, http.StatusBadRequest)
			return
		}
		spec, herr = s.filterJobSpec(*req.Filter, lane, r.Header)
	default:
		http.Error(w, fmt.Sprintf("unknown op %q (want render or filter)", op), http.StatusBadRequest)
		return
	}
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	j, err := s.jobs.Submit(spec)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // headers are out
		"id":         j.ID,
		"state":      j.State(),
		"events_url": "/jobs/" + j.ID + "/events",
	})
}

// maxCoarseLevel is the volume's deepest meaningful preview level: the
// largest L whose 2^L-per-axis subsample still has at least two samples
// on every axis. Below two samples an axis degenerates to a single
// plane and the "preview" stops resembling the volume.
func maxCoarseLevel(nx, ny, nz int) int {
	level := 0
	for m := min(nx, ny, nz); m>>(level+1) >= 2; level++ {
	}
	return level
}

// renderJobSpec builds the scheduler spec for a render job. Batch
// compatibility covers exactly what Setup resolves — the volume's
// contents (name + generation), the element type of the run, and the
// coarse level — so framing (view, size, format) varies freely within
// a batch while the expensive per-volume work is shared.
//
// The requested coarse level is clamped to the volume's deepest
// meaningful level before it reaches the batch key or the subsample:
// a level-4 preview of an 8³ volume would collapse axes to a point.
// The coarse event reports the effective (clamped) level, so clients
// see the level that actually rendered.
func (s *server) renderJobSpec(req renderRequest, lane jobs.Lane, coarseLevel int, hdr http.Header) (jobs.Spec, *httpErr) {
	plan, herr := s.planRender(req)
	if herr != nil {
		return jobs.Spec{}, herr
	}
	if lmax := maxCoarseLevel(plan.vol.Grid.Dims()); coarseLevel > lmax {
		coarseLevel = lmax
	}
	// Probe the stored layout spec at the full extents so a corrupt
	// string fails the request, not the job. The Setup closure re-parses
	// at the coarse dims; a spec valid at the full extents is valid at
	// every subsampled size (smaller extents need fewer bits, and a bit
	// spec's surplus occurrences are inert).
	fnx, fny, fnz := plan.vol.Grid.Dims()
	if _, err := sfcmem.ParseLayoutSpec(plan.vol.Layout, fnx, fny, fnz); err != nil {
		// Stored layouts were parsed at volume creation; this is a bug,
		// not a client error.
		return jobs.Spec{}, &httpErr{http.StatusInternalServerError, err.Error()}
	}
	layoutSpec := plan.vol.Layout
	jt, _ := s.hub.Start(context.Background(), "job", hdr)
	return jobs.Spec{
		BatchKey: digest("render", plan.vol.Name, plan.vol.Gen, plan.dt, coarseLevel),
		Lane:     lane,
		Setup: func(ctx context.Context) (any, error) {
			g := plan.vol.Grid
			if plan.dt != g.Dtype() {
				g = g.Convert(plan.dt)
			}
			sh := &renderShared{full: g}
			if coarseLevel > 0 {
				c, err := sfcmem.SubsampleAny(g, coarseLevel, func(nx, ny, nz int) sfcmem.Layout {
					l, err := sfcmem.ParseLayoutSpec(layoutSpec, nx, ny, nz)
					if err != nil {
						// Unreachable: the spec parsed at the full extents
						// above, and shrinking extents never invalidates it.
						panic(fmt.Sprintf("layout spec %q invalid at %dx%dx%d: %v", layoutSpec, nx, ny, nz, err))
					}
					return l
				})
				if err != nil {
					return nil, err
				}
				sh.coarse = c
			}
			return sh, nil
		},
		Run: func(ctx context.Context, shared any, j *jobs.Job) error {
			return s.runRenderJob(obs.With(ctx, jt), jt, shared.(*renderShared), plan, coarseLevel, j)
		},
		Done: s.jobDone(jt),
	}, nil
}

// runRenderJob is a render job's kernel path, executed on a scheduler
// runner: admission, coarse preview (subsampled volume at reduced
// resolution), full-resolution refinement, cache store. The admission
// slot is held across both passes — the job occupies a kernel worker
// for its whole run — and released on any exit, including cancellation
// mid-refine.
func (s *server) runRenderJob(ctx context.Context, jt *obs.Trace, sh *renderShared, plan *renderPlan, coarseLevel int, j *jobs.Job) error {
	s.recordQueueSpans(jt, j)
	release, err := s.admit(ctx)
	if err != nil {
		return err
	}
	defer release()
	req := plan.req
	if sh.coarse != nil {
		cw, ch := req.Width>>coarseLevel, req.Height>>coarseLevel
		if cw < 16 {
			cw = 16
		}
		if ch < 16 {
			ch = 16
		}
		cv, err := s.rasterize(ctx, jt, sh.coarse, req, cw, ch, "kernel.coarse")
		if err != nil {
			return err
		}
		s.jobTTFB.Observe(time.Since(j.Times().Submitted))
		j.Emit("coarse", frameEvent{
			Level: coarseLevel, Width: cw, Height: ch,
			ContentType: cv.ContentType,
			Frame:       base64.StdEncoding.EncodeToString(cv.Body),
		})
	}
	start := time.Now()
	v, err := s.rasterize(ctx, jt, sh.full, req, req.Width, req.Height, "kernel")
	if err != nil {
		return err
	}
	s.renderLatency.Observe(time.Since(start))
	if s.cache != nil {
		// Same digest a sync /render computes: the job's output answers
		// future synchronous requests from the cache.
		s.cache.Put(plan.key, v)
	}
	j.SetResult(&v)
	j.Emit("refined", frameEvent{
		Level: 0, Width: req.Width, Height: req.Height,
		ContentType: v.ContentType,
		ETag:        plan.etag,
		Frame:       base64.StdEncoding.EncodeToString(v.Body),
	})
	return nil
}

// filterJobSpec builds the scheduler spec for a filter job. The batch
// shares the dtype-converted source grid; each job then runs its own
// kernel parameters. The result volume lands in the store and the
// response body in the cache exactly as a sync /filter would leave
// them.
func (s *server) filterJobSpec(req filterRequest, lane jobs.Lane, hdr http.Header) (jobs.Spec, *httpErr) {
	plan, herr := s.planFilter(req)
	if herr != nil {
		return jobs.Spec{}, herr
	}
	jt, _ := s.hub.Start(context.Background(), "job", hdr)
	return jobs.Spec{
		BatchKey: digest("filter", plan.src.Name, plan.src.Gen, plan.dt),
		Lane:     lane,
		Setup: func(ctx context.Context) (any, error) {
			g := plan.src.Grid
			if plan.dt != g.Dtype() {
				g = g.Convert(plan.dt)
			}
			return g, nil
		},
		Run: func(ctx context.Context, shared any, j *jobs.Job) error {
			ctx = obs.With(ctx, jt)
			s.recordQueueSpans(jt, j)
			release, err := s.admit(ctx)
			if err != nil {
				return err
			}
			defer release()
			v, err := s.applyFilter(ctx, jt, shared.(*sfcmem.AnyGrid), plan)
			if err != nil {
				return err
			}
			if s.cache != nil {
				s.cache.Put(plan.key, v)
			}
			j.SetResult(&v)
			j.Emit("result", json.RawMessage(bytes.TrimSpace(v.Body)))
			return nil
		},
		Done: s.jobDone(jt),
	}, nil
}

// recordQueueSpans backfills the job's scheduler phases into its
// trace. Trace.Stage cannot be used here — submit, seal, and run
// happen on three goroutines — so the spans are recorded retroactively
// from the lifecycle timestamps via StageAt, which is safe from any
// goroutine.
func (s *server) recordQueueSpans(jt *obs.Trace, j *jobs.Job) {
	tm := j.Times()
	if !tm.Sealed.IsZero() {
		jt.StageAt("job.queued", tm.Submitted, tm.Sealed.Sub(tm.Submitted))
		if !tm.Started.IsZero() {
			jt.StageAt("job.batched", tm.Sealed, tm.Started.Sub(tm.Sealed))
		}
	}
}

// jobDone closes out a job's trace when it terminates (from whichever
// goroutine drove the terminal transition), so queued/batched/coarse/
// refine phases of every job show up in /ops/trace/recent alongside
// synchronous requests.
func (s *server) jobDone(jt *obs.Trace) func(*jobs.Job) {
	return func(j *jobs.Job) {
		var size int64
		if v, ok := j.Result().(*rcache.Value); ok {
			size = int64(len(v.Body))
		}
		status := http.StatusOK
		switch j.State() {
		case jobs.StateFailed:
			status = http.StatusInternalServerError
		case jobs.StateCancelled:
			status = statusClientClosedRequest
		}
		s.hub.Finish(jt, status, size, "")
	}
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	if s.jobs == nil {
		http.Error(w, "jobs disabled", http.StatusServiceUnavailable)
		return nil, false
	}
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q", r.PathValue("id")), http.StatusNotFound)
		return nil, false
	}
	return j, true
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Snapshot()) //nolint:errcheck
}

// handleCancelJob cancels a job. Cancellation of a running job is
// asynchronous — the kernel aborts at its next context check — so the
// reported state may still be "running"; watch /events or poll for the
// terminal "cancelled".
func (s *server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	j.Cancel()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Snapshot()) //nolint:errcheck
}

// handleJobEvents streams a job's event log as Server-Sent Events:
// everything published so far is replayed (reconnects see the full
// history), then live events until the terminal one. A watcher hanging
// up before the job finishes cancels it — the SSE stream is the async
// analogue of the sync connection, where a dropped client cancels the
// kernel mid-flight.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	past, ch, unsub := j.Subscribe()
	defer unsub()
	// write emits one SSE frame and reports whether the stream should
	// continue: it ends at the terminal event (the last ever published)
	// or when the client is gone (flush fails).
	write := func(ev jobs.Event) bool {
		fmt.Fprintf(w, "id: %d\nevent: %s\n", ev.Seq, ev.Type)
		data := []byte("{}")
		if ev.Data != nil {
			data = bytes.TrimSpace(ev.Data)
		}
		// JSON can't contain raw newlines, but don't rely on it: any
		// line break would desync the SSE framing.
		for _, line := range bytes.Split(data, []byte("\n")) {
			fmt.Fprintf(w, "data: %s\n", line)
		}
		fmt.Fprint(w, "\n")
		if err := rc.Flush(); err != nil {
			return false
		}
		return !jobs.State(ev.Type).Terminal()
	}
	for _, ev := range past {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			j.Cancel()
			return
		}
	}
}
