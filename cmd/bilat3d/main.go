// Command bilat3d runs a single bilateral-filter experiment: one volume,
// one layout, one configuration, reporting wall-clock runtime and
// (optionally) simulated cache counters.
//
//	bilat3d -size 96 -layout zorder -radius 2 -axis pz -order zyx -threads 8 -sim ivy/32
//
// It is the interactive counterpart to sfcbench's batch figure runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

func main() {
	var (
		size    = flag.Int("size", 64, "volume edge (size³ voxels)")
		layout  = flag.String("layout", "zorder", "memory layout: array, zorder, tiled, hilbert")
		radius  = flag.Int("radius", 2, "stencil radius (stencil edge 2r+1)")
		sigmaS  = flag.Float64("sigma-s", 0, "spatial sigma (0 = radius/2+0.5)")
		sigmaR  = flag.Float64("sigma-r", 0, "photometric sigma (0 = 0.1)")
		axis    = flag.String("axis", "px", "pencil axis: px, py, pz")
		order   = flag.String("order", "xyz", "stencil iteration order: xyz, zyx")
		threads = flag.Int("threads", 1, "worker count")
		sim     = flag.String("sim", "", "also run the cache simulator: ivy, mic, ivy/32, ...")
		seed    = flag.Uint64("seed", 1, "phantom seed")
		noise   = flag.Float64("noise", 0.05, "phantom noise sigma")
	)
	flag.Parse()

	kind, err := core.ParseKind(*layout)
	if err != nil {
		fatal(err)
	}
	ax, err := parallel.ParseAxis(*axis)
	if err != nil {
		fatal(err)
	}
	ord, err := filter.ParseOrder(*order)
	if err != nil {
		fatal(err)
	}
	opts := filter.Options{
		Radius:       *radius,
		SigmaSpatial: *sigmaS,
		SigmaRange:   *sigmaR,
		Axis:         ax,
		Order:        ord,
		Workers:      *threads,
	}

	fmt.Printf("generating %d³ MRI phantom (%s layout)...\n", *size, kind)
	src := volume.MRIPhantom(core.New(kind, *size, *size, *size), *seed, *noise)
	dst := grid.New(core.New(kind, *size, *size, *size))

	start := time.Now()
	if err := filter.Apply(src, dst, opts); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	voxels := *size * *size * *size
	fmt.Printf("bilateral r=%d %s %s threads=%d: %v (%.1f Mvoxel/s)\n",
		*radius, ax, ord, *threads, elapsed,
		float64(voxels)/elapsed.Seconds()/1e6)
	lo, hi := dst.MinMax()
	fmt.Printf("output range [%.4f, %.4f]\n", lo, hi)

	if *sim != "" {
		platform, err := cache.ParsePlatform(*sim)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying through %s cache simulator (%d simulated threads)...\n",
			platform.Name, *threads)
		sys := cache.NewSystem(platform, *threads)
		srcs := make([]grid.Reader, *threads)
		dsts := make([]grid.Writer, *threads)
		for w := 0; w < *threads; w++ {
			srcs[w] = grid.NewTraced(src, 0, sys.Front(w))
			dsts[w] = grid.NewTraced(dst, 1<<40, sys.Front(w))
		}
		if err := filter.ApplyViews(srcs, dsts, opts); err != nil {
			fatal(err)
		}
		fmt.Print(sys.Report())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bilat3d:", err)
	os.Exit(1)
}
