// Command volrend renders the combustion plume with the raycasting
// volume renderer: one viewpoint or a full orbit, one layout, optional
// cache simulation, optional PPM output.
//
//	volrend -size 128 -layout zorder -view 2 -threads 8 -o frame.ppm
//	volrend -size 64 -orbit -prefix frames/view -sim ivy/32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

func main() {
	var (
		size    = flag.Int("size", 64, "volume edge (size³ voxels)")
		layout  = flag.String("layout", "zorder", "memory layout: array, zorder, tiled, hilbert")
		img     = flag.Int("image", 256, "square image edge in pixels")
		view    = flag.Int("view", 0, "orbit viewpoint index")
		views   = flag.Int("views", 8, "number of orbit positions")
		orbit   = flag.Bool("orbit", false, "render every orbit viewpoint")
		threads = flag.Int("threads", 1, "worker count")
		tile    = flag.Int("tile", 32, "image tile edge")
		step    = flag.Float64("step", 1, "ray-march step in voxels")
		shade   = flag.Bool("shade", false, "enable gradient shading")
		ortho   = flag.Bool("ortho", false, "orthographic projection (paper §III-B contrast case)")
		skip    = flag.Bool("skip", false, "empty-space skipping (min-max macrocells)")
		outFile = flag.String("o", "", "write the image to this file (.ppm or .png)")
		prefix  = flag.String("prefix", "", "with -orbit: write frames as <prefix><view>.ppm")
		sim     = flag.String("sim", "", "also run the cache simulator: ivy, mic, ivy/32, ...")
		seed    = flag.Uint64("seed", 1, "plume seed")
	)
	flag.Parse()

	kind, err := core.ParseKind(*layout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generating %d³ combustion plume (%s layout)...\n", *size, kind)
	vol := volume.CombustionPlume(core.New(kind, *size, *size, *size), *seed)
	tf := render.DefaultTransferFunc()
	opts := render.Options{TileSize: *tile, Workers: *threads, Step: *step, Shade: *shade, EmptySkip: *skip}

	renderView := func(v int) error {
		cam := render.Orbit(v, *views, *size, *size, *size, *img, *img)
		cam.Ortho = *ortho
		start := time.Now()
		image, err := render.Render(vol, cam, tf, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("view %d/%d: %v (mean alpha %.3f)\n", v, *views, elapsed, image.MeanAlpha())
		path := ""
		if *orbit && *prefix != "" {
			path = fmt.Sprintf("%s%d.ppm", *prefix, v)
		} else if !*orbit && *outFile != "" {
			path = *outFile
		}
		if path != "" {
			save := image.SavePPM
			if strings.HasSuffix(path, ".png") {
				save = image.SavePNG
			}
			if err := save(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *sim != "" {
			platform, err := cache.ParsePlatform(*sim)
			if err != nil {
				return err
			}
			sys := cache.NewSystem(platform, *threads)
			viewsR := make([]grid.Reader, *threads)
			for w := 0; w < *threads; w++ {
				viewsR[w] = grid.NewTraced(vol, 0, sys.Front(w))
			}
			if _, err := render.RenderViews(viewsR, cam, tf, opts); err != nil {
				return err
			}
			fmt.Print(sys.Report())
		}
		return nil
	}

	if *orbit {
		for v := 0; v < *views; v++ {
			if err := renderView(v); err != nil {
				fatal(err)
			}
		}
	} else if err := renderView(*view); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volrend:", err)
	os.Exit(1)
}
