// Command reusedist profiles the kernels' memory-access streams with
// the reuse-distance analyzer and prints, for each layout, the
// architecture-independent LRU miss-ratio curve — how the miss ratio
// falls as the cache grows. A layout with better locality pushes the
// curve's knee toward smaller caches; this is the paper's Fig. 1
// intuition expressed as a single cache-size-agnostic plot.
//
//	reusedist -kernel bilat -size 32 -radius 2 -axis pz -order zyx
//	reusedist -kernel volrend -size 32 -view 2
package main

import (
	"flag"
	"fmt"
	"os"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/reuse"
	"sfcmem/internal/volume"
)

func main() {
	var (
		kernel = flag.String("kernel", "bilat", "kernel to profile: bilat or volrend")
		size   = flag.Int("size", 32, "volume edge")
		radius = flag.Int("radius", 2, "bilat: stencil radius")
		axis   = flag.String("axis", "pz", "bilat: pencil axis")
		order  = flag.String("order", "zyx", "bilat: stencil iteration order")
		view   = flag.Int("view", 2, "volrend: orbit viewpoint")
		img    = flag.Int("image", 64, "volrend: image edge")
		seed   = flag.Uint64("seed", 1, "dataset seed")
	)
	flag.Parse()

	fmt.Printf("reuse-distance curves, %s kernel, %d³ volume\n\n", *kernel, *size)
	fmt.Printf("%-12s", "cache lines")
	kinds := core.Kinds()
	for _, k := range kinds {
		fmt.Printf(" %10s", k)
	}
	fmt.Println()

	curves := make(map[core.Kind][]float64)
	var sizes []int
	for _, kind := range kinds {
		h, err := profile(*kernel, kind, *size, *radius, *axis, *order, *view, *img, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusedist:", err)
			os.Exit(1)
		}
		sizes, curves[kind] = h.Curve(4, 20)
	}
	for i, c := range sizes {
		fmt.Printf("%-12d", c)
		for _, kind := range kinds {
			fmt.Printf(" %10.4f", curves[kind][i])
		}
		fmt.Println()
	}
	fmt.Println("\n(lower is better; each column is the predicted LRU miss ratio at that cache size)")
}

func profile(kernel string, kind core.Kind, size, radius int, axis, order string, view, img int, seed uint64) (reuse.Histogram, error) {
	an := reuse.NewAnalyzer(1 << 20)
	l := core.New(kind, size, size, size)
	switch kernel {
	case "bilat":
		ax, err := parallel.ParseAxis(axis)
		if err != nil {
			return reuse.Histogram{}, err
		}
		ord, err := filter.ParseOrder(order)
		if err != nil {
			return reuse.Histogram{}, err
		}
		src := volume.MRIPhantom(l, seed, 0.05)
		dst := grid.New(core.New(kind, size, size, size))
		err = filter.ApplyViews(
			[]grid.Reader{grid.NewTraced(src, 0, an)},
			[]grid.Writer{grid.NewTraced(dst, 1<<40, an)},
			filter.Options{Radius: radius, Axis: ax, Order: ord, Workers: 1})
		return an.Histogram(), err
	case "volrend":
		vol := volume.CombustionPlume(l, seed)
		cam := render.Orbit(view, 8, size, size, size, img, img)
		_, err := render.RenderViews(
			[]grid.Reader{grid.NewTraced(vol, 0, an)},
			cam, render.DefaultTransferFunc(),
			render.Options{Workers: 1})
		return an.Histogram(), err
	}
	return reuse.Histogram{}, fmt.Errorf("unknown kernel %q (bilat or volrend)", kernel)
}
