// Command benchdiff turns `go test -bench` text output into a stable
// JSON summary and compares it against a committed baseline, failing
// when a gated benchmark regresses past a threshold. It is the engine
// of the CI bench-regression job:
//
//	go test -run='^$' -bench='FastPath' -benchtime=3x -benchmem . > bench.txt
//	benchdiff -in bench.txt -out bench_fresh.json \
//	    -baseline BENCH_baseline.json \
//	    -gate 'FastPathBilatR5|FastPathVolrend' -threshold 15
//
// Refresh the baseline after an intentional performance change with
// -update (writes the parsed results to the -baseline path):
//
//	benchdiff -in bench.txt -baseline BENCH_baseline.json -update
//
// Comparison is on ns/op only: alloc counts are pinned better by
// testing.B.ReportAllocs assertions, and B/op noise on tiny benches
// would make the gate cry wolf. Benchmarks present in the fresh run
// but absent from the baseline are reported informationally; a GATED
// benchmark missing from the fresh run is an error (a silently
// deleted benchmark must not pass the gate).
//
// Exit codes: 0 ok, 1 regression or missing gated benchmark, 2 usage
// or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchResult is one benchmark's parsed measurements.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// benchFile is the JSON document benchdiff reads and writes.
type benchFile struct {
	Version    int                    `json:"version"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFastPathBilatR5/array/flat-8   5   228171026 ns/op   47440 B/op   30 allocs/op
//
// The trailing -N is the GOMAXPROCS suffix and is stripped from the
// stored name so baselines survive a core-count change.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var memField = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)

// parseBench reads `go test -bench` output into a benchFile. Repeated
// names (e.g. -count > 1) keep the minimum ns/op: the fastest
// observation is the least noisy estimate of what the code can do.
func parseBench(r io.Reader) (benchFile, error) {
	out := benchFile{Version: 1, Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return out, fmt.Errorf("bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return out, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		res := benchResult{NsPerOp: ns, Iterations: iters}
		for _, f := range memField.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return out, fmt.Errorf("bad %s in %q: %w", f[2], sc.Text(), err)
			}
			switch f[2] {
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if prev, ok := out.Benchmarks[m[1]]; !ok || res.NsPerOp < prev.NsPerOp {
			out.Benchmarks[m[1]] = res
		}
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if len(out.Benchmarks) == 0 {
		return out, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

func loadJSON(path string) (benchFile, error) {
	var f benchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

func writeJSON(path string, f benchFile) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compare checks every gated baseline benchmark against the fresh run
// and writes a report. It returns the number of failures (regressions
// past the threshold plus gated benchmarks missing from fresh).
func compare(w io.Writer, baseline, fresh benchFile, gate *regexp.Regexp, thresholdPct float64) int {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		gated := gate.MatchString(name)
		base := baseline.Benchmarks[name]
		cur, ok := fresh.Benchmarks[name]
		switch {
		case !ok && gated:
			fmt.Fprintf(w, "FAIL  %-45s missing from fresh run (gated)\n", name)
			failures++
		case !ok:
			fmt.Fprintf(w, "skip  %-45s not in fresh run\n", name)
		default:
			delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
			verdict := "ok  "
			if gated && delta > thresholdPct {
				verdict = "FAIL"
				failures++
			} else if !gated {
				verdict = "info"
			}
			fmt.Fprintf(w, "%s  %-45s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
				verdict, name, base.NsPerOp, cur.NsPerOp, delta)
		}
	}
	for name := range fresh.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "new   %-45s (not in baseline)\n", name)
		}
	}
	return failures
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "go test -bench output to read (default stdin)")
	out := fs.String("out", "", "write the parsed results as JSON to this path")
	baseline := fs.String("baseline", "", "baseline JSON to compare against (or to write with -update)")
	gatePat := fs.String("gate", ".*", "regexp selecting the benchmarks whose regression fails the run")
	threshold := fs.Float64("threshold", 15, "ns/op regression tolerance for gated benchmarks, percent")
	update := fs.Bool("update", false, "write the parsed results to -baseline instead of comparing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	gate, err := regexp.Compile(*gatePat)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: bad -gate:", err)
		return 2
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close() //nolint:errcheck // read-only file
		src = f
	}
	fresh, err := parseBench(src)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if *out != "" {
		if err := writeJSON(*out, fresh); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	}
	if *update {
		if *baseline == "" {
			fmt.Fprintln(stderr, "benchdiff: -update needs -baseline")
			return 2
		}
		if err := writeJSON(*baseline, fresh); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %d benchmarks to %s\n", len(fresh.Benchmarks), *baseline)
		return 0
	}
	if *baseline == "" {
		// Parse/convert-only invocation.
		fmt.Fprintf(stdout, "benchdiff: parsed %d benchmarks\n", len(fresh.Benchmarks))
		return 0
	}
	base, err := loadJSON(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if failures := compare(stdout, base, fresh, gate, *threshold); failures > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d gated benchmark(s) regressed past %.0f%% (or went missing)\n", failures, *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: all gated benchmarks within %.0f%% of baseline\n", *threshold)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
