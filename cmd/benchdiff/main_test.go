package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: sfcmem
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFastPathBilatR5/array/flat-8         	       3	 360064429 ns/op	   47440 B/op	      30 allocs/op
BenchmarkFastPathBilatR5/array/iface-8        	       3	 678765863 ns/op	   44528 B/op	      17 allocs/op
BenchmarkFastPathVolrend/zorder/flat-8        	       3	  29611001 ns/op	  264496 B/op	      24 allocs/op
BenchmarkAblationTileSize/t16-8               	       3	   1234567 ns/op
PASS
ok  	sfcmem	2.495s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	res, ok := f.Benchmarks["FastPathBilatR5/array/flat"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from name")
	}
	if res.NsPerOp != 360064429 || res.BytesPerOp != 47440 || res.AllocsPerOp != 30 || res.Iterations != 3 {
		t.Errorf("parsed %+v", res)
	}
	if res := f.Benchmarks["AblationTileSize/t16"]; res.BytesPerOp != 0 {
		t.Errorf("benchmark without -benchmem fields parsed as %+v", res)
	}
}

func TestParseBenchKeepsFastestOfRepeats(t *testing.T) {
	in := "BenchmarkX-8 10 200 ns/op\nBenchmarkX-8 10 100 ns/op\nBenchmarkX-8 10 150 ns/op\n"
	f, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Benchmarks["X"].NsPerOp; got != 100 {
		t.Errorf("ns/op = %v, want the 100 minimum", got)
	}
}

func TestParseBenchEmptyInputFails(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("empty bench output parsed without error")
	}
}

func mkBench(ns map[string]float64) benchFile {
	f := benchFile{Version: 1, Benchmarks: map[string]benchResult{}}
	for name, v := range ns {
		f.Benchmarks[name] = benchResult{NsPerOp: v, Iterations: 3}
	}
	return f
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := mkBench(map[string]float64{"FastPathBilatR5/array/flat": 100e6, "FastPathVolrend/zorder/flat": 30e6})
	fresh := mkBench(map[string]float64{"FastPathBilatR5/array/flat": 110e6, "FastPathVolrend/zorder/flat": 27e6})
	var out bytes.Buffer
	if n := compare(&out, base, fresh, regexp.MustCompile(`FastPath`), 15); n != 0 {
		t.Fatalf("compare failed %d benchmarks within threshold:\n%s", n, out.String())
	}
}

// TestCompareFailsOnInjected2xSlowdown is the acceptance check that
// the gate actually bites: doubling ns/op on a gated benchmark must
// fail the comparison.
func TestCompareFailsOnInjected2xSlowdown(t *testing.T) {
	base := mkBench(map[string]float64{"FastPathBilatR5/array/flat": 100e6, "FastPathVolrend/zorder/flat": 30e6})
	fresh := mkBench(map[string]float64{"FastPathBilatR5/array/flat": 200e6, "FastPathVolrend/zorder/flat": 30e6})
	var out bytes.Buffer
	n := compare(&out, base, fresh, regexp.MustCompile(`FastPathBilatR5|FastPathVolrend`), 15)
	if n != 1 {
		t.Fatalf("2x slowdown produced %d failures, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "+100.0%") {
		t.Errorf("report does not name the regression:\n%s", out.String())
	}
}

func TestCompareUngatedRegressionIsInformational(t *testing.T) {
	base := mkBench(map[string]float64{"AblationTileSize/t16": 1e6, "FastPathVolrend/zorder/flat": 30e6})
	fresh := mkBench(map[string]float64{"AblationTileSize/t16": 5e6, "FastPathVolrend/zorder/flat": 30e6})
	var out bytes.Buffer
	if n := compare(&out, base, fresh, regexp.MustCompile(`FastPath`), 15); n != 0 {
		t.Fatalf("ungated regression failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "info") {
		t.Errorf("ungated benchmark not reported informationally:\n%s", out.String())
	}
}

func TestCompareMissingGatedBenchmarkFails(t *testing.T) {
	base := mkBench(map[string]float64{"FastPathVolrend/zorder/flat": 30e6})
	fresh := mkBench(map[string]float64{"SomethingElse": 1})
	var out bytes.Buffer
	if n := compare(&out, base, fresh, regexp.MustCompile(`FastPath`), 15); n != 1 {
		t.Fatalf("missing gated benchmark produced %d failures, want 1:\n%s", n, out.String())
	}
}

// TestRunEndToEnd drives the CLI: update a baseline from one run, pass
// against itself, then fail against a doctored 2x-slower run.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	freshJSON := filepath.Join(dir, "fresh.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("update run: exit %d, stderr %s", code, stderr.String())
	}

	stdout.Reset()
	code = run([]string{"-baseline", baseline, "-out", freshJSON,
		"-gate", "FastPathBilatR5|FastPathVolrend", "-threshold", "15"},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-compare: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if _, err := os.Stat(freshJSON); err != nil {
		t.Errorf("fresh JSON artifact not written: %v", err)
	}

	slower := strings.ReplaceAll(sampleBench, " 360064429 ns/op", " 720128858 ns/op")
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-baseline", baseline,
		"-gate", "FastPathBilatR5|FastPathVolrend", "-threshold", "15"},
		strings.NewReader(slower), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("2x slowdown: exit %d, want 1\n%s", code, stdout.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{"-no-such-flag"},
		{"-gate", "("},
		{"-update"},                    // -update without -baseline
		{"-in", "/no/such/file.txt"},   // unreadable input
		{"-baseline", "/no/such.json"}, // unreadable baseline
	}
	for _, args := range cases {
		in := strings.NewReader(sampleBench)
		if code := run(args, in, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
