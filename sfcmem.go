// Package sfcmem is a space-filling-curve memory layout library for
// structured-memory, data-intensive applications, reproducing Bethel,
// Camp, Donofrio & Howison, "Improving Performance of Structured-Memory,
// Data-Intensive Applications on Multi-core Platforms via a Space-
// Filling Curve Memory Layout" (IPDPS 2015 Workshops / HPDIC 2015).
//
// The library stores 3D volumes behind a uniform Index(i,j,k) accessor
// whose backing layout is pluggable: traditional array (row-major)
// order, Z order (a Morton space-filling curve), 3D tiling, or Hilbert
// order. Z order's property — accesses nearby in index space are likely
// nearby in physical memory regardless of direction — improves cache
// behaviour for structured and semi-structured access patterns without
// changing application code.
//
// Two complete shared-memory-parallel kernels from visualization and
// analysis exercise the layouts, as in the paper: a 3D bilateral filter
// (structured stencil access) and a raycasting volume renderer
// (semi-structured, viewpoint-dependent access). A trace-driven cache
// simulator stands in for the paper's PAPI hardware counters, and the
// experiment harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md).
//
// # Quick start
//
//	l := sfcmem.NewLayout(sfcmem.ZOrder, 256, 256, 256)
//	g := sfcmem.NewGrid(l)
//	g.Set(10, 20, 30, 1.5)
//	v := g.At(10, 20, 30)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory. This package is a thin facade over the implementation
// packages in internal/.
package sfcmem

import (
	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// Layout maps 3D grid indices to linear buffer offsets; see core.Layout.
type Layout = core.Layout

// Kind enumerates the built-in layouts.
type Kind = core.Kind

// Built-in layout kinds.
const (
	// Array is traditional row-major order.
	Array = core.ArrayKind
	// ZOrder is the Z-order (Morton) space-filling curve layout — the
	// paper's contribution.
	ZOrder = core.ZKind
	// Tiled is a 3D blocked layout (classic cache blocking).
	Tiled = core.TiledKind
	// Hilbert is the Hilbert space-filling curve layout.
	Hilbert = core.HilbertKind
)

// NewLayout constructs a layout of the given kind for an nx×ny×nz grid.
func NewLayout(kind Kind, nx, ny, nz int) Layout { return core.New(kind, nx, ny, nz) }

// ParseLayout maps a layout name ("array", "zorder", "tiled",
// "hilbert", and their aliases) to its Kind.
func ParseLayout(name string) (Kind, error) { return core.ParseKind(name) }

// ParseLayoutSpec resolves a layout specification string for an
// nx×ny×nz grid: either a kind name as accepted by ParseLayout, or a
// parameterized generalized-Morton interleave ("bit:yxzyxz…"). Layout
// strings that travel — volume manifests, upload parameters, tuner
// results — go through this so a tuned layout reconstructs exactly.
func ParseLayoutSpec(spec string, nx, ny, nz int) (Layout, error) {
	return core.ParseSpec(spec, nx, ny, nz)
}

// NewBitLayout constructs a generalized Morton (bit-interleave) layout
// from an explicit interleave string, e.g. "xyzxyzxyz" (≡ Z order) or
// "xxyyzzxyz" (4×4×4 row-major-ish bricks on a Morton spine); see
// core.BitLayout.
func NewBitLayout(nx, ny, nz int, order string) (Layout, error) {
	return core.NewBitLayout(nx, ny, nz, order)
}

// StrideStats quantifies a layout's physical-memory locality for a
// given access direction; see core.AxisStride and core.RayStride.
type StrideStats = core.StrideStats

// AxisStride measures stride statistics for unit steps along axis
// (0=x, 1=y, 2=z).
func AxisStride(l Layout, axis int) StrideStats { return core.AxisStride(l, axis) }

// RayStride measures stride statistics along straight rays of direction
// (dx, dy, dz) crossing the volume.
func RayStride(l Layout, dx, dy, dz float64) StrideStats { return core.RayStride(l, dx, dy, dz) }

// Grid is a 3D float32 volume stored behind a Layout.
type Grid = grid.Grid[float32]

// Reader is read-only access to a volume; Writer is write access. Both
// *Grid and traced views satisfy them.
type (
	Reader = grid.Reader
	Writer = grid.Writer
)

// NewGrid allocates a zero-filled grid under the given layout.
func NewGrid(l Layout) *Grid { return grid.New(l) }

// GridFromFunc allocates a grid and fills element (i,j,k) with f(i,j,k).
func GridFromFunc(l Layout, f func(i, j, k int) float32) *Grid { return grid.FromFunc(l, f) }

// SampleTrilinear returns the trilinearly interpolated value at a
// continuous position in index coordinates.
func SampleTrilinear(r Reader, x, y, z float64) float32 { return grid.SampleTrilinear(r, x, y, z) }

// Traced is a view of a Grid that reports every access to a Sink (for
// cache simulation); Sink consumes the access stream.
type (
	Traced = grid.Traced[float32]
	Sink   = grid.Sink
)

// NewTraced wraps g in a traced view based at the given simulated byte
// address.
func NewTraced(g *Grid, base uint64, sink Sink) *Traced { return grid.NewTraced(g, base, sink) }

// Axis selects a pencil direction for the filter's work decomposition.
type Axis = parallel.Axis

// Pencil axes.
const (
	AxisX = parallel.AxisX
	AxisY = parallel.AxisY
	AxisZ = parallel.AxisZ
)

// FilterOptions configures the 3D bilateral filter.
type FilterOptions = filter.Options

// FilterOrder is the stencil iteration order (XYZ or ZYX).
type FilterOrder = filter.Order

// Stencil iteration orders.
const (
	XYZ = filter.XYZ
	ZYX = filter.ZYX
)

// Bilateral runs the shared-memory-parallel 3D bilateral filter from
// src into dst.
func Bilateral(src Reader, dst Writer, o FilterOptions) error { return filter.Apply(src, dst, o) }

// BilateralViews runs the filter with per-worker source/destination
// views (used to attach traced views for cache simulation).
func BilateralViews(srcs []Reader, dsts []Writer, o FilterOptions) error {
	return filter.ApplyViews(srcs, dsts, o)
}

// GaussianConvolve runs the plain Gaussian-smoothing baseline.
func GaussianConvolve(src Reader, dst Writer, o FilterOptions) error {
	return filter.GaussianConvolve(src, dst, o)
}

// Renderer types.
type (
	// Camera is a perspective pinhole camera.
	Camera = render.Camera
	// TransferFunc maps scalar values to color and opacity.
	TransferFunc = render.TransferFunc
	// RenderOptions configures a render.
	RenderOptions = render.Options
	// Image is the float32 RGBA framebuffer a render produces.
	Image = render.Image
	// RGBA is a straight-alpha color sample.
	RGBA = render.RGBA
	// ControlPoint anchors a transfer function at a scalar value.
	ControlPoint = render.ControlPoint
)

// Orbit returns the camera for orbit position view of nViews around an
// nx×ny×nz volume (the paper's viewpoint sweep).
func Orbit(view, nViews, nx, ny, nz, imgW, imgH int) Camera {
	return render.Orbit(view, nViews, nx, ny, nz, imgW, imgH)
}

// NewTransferFunc builds a piecewise-linear transfer function.
func NewTransferFunc(points []ControlPoint) (*TransferFunc, error) {
	return render.NewTransferFunc(points)
}

// DefaultTransferFunc is a flame-like transfer function suited to the
// combustion plume.
func DefaultTransferFunc() *TransferFunc { return render.DefaultTransferFunc() }

// Render raycasts the volume from cam through tf.
func Render(vol Reader, cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	return render.Render(vol, cam, tf, o)
}

// RenderViews raycasts with per-worker volume views (for tracing).
func RenderViews(views []Reader, cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	return render.RenderViews(views, cam, tf, o)
}

// Cache-simulation types: a Platform describes a cache hierarchy, a
// System simulates it, and per-thread Fronts consume access streams
// (each Front is a Sink).
type (
	Platform    = cache.Platform
	CacheSystem = cache.System
	CacheReport = cache.Report
)

// IvyBridgePlatform models the paper's Ivy Bridge test machine
// (32K L1 / 256K L2 private, 30M shared L3).
func IvyBridgePlatform() Platform { return cache.IvyBridge() }

// MICPlatform models the paper's Intel MIC test machine (32K L1 / 512K
// L2 private, no L3).
func MICPlatform() Platform { return cache.MIC() }

// ScaledPlatform divides a platform's cache capacities by a power-of-two
// factor, for simulating shrunken volumes at preserved working-set
// ratios.
func ScaledPlatform(p Platform, factor int) Platform { return cache.Scaled(p, factor) }

// NewCacheSystem builds a simulated memory system with one private
// hierarchy per simulated thread.
func NewCacheSystem(p Platform, threads int) *CacheSystem { return cache.NewSystem(p, threads) }

// Dataset generators (the experiment stand-ins; see DESIGN.md §2).

// MRIPhantom synthesizes an MRI-like head phantom with additive noise.
func MRIPhantom(l Layout, seed uint64, noiseSigma float64) *Grid {
	return volume.MRIPhantom(l, seed, noiseSigma)
}

// CombustionPlume synthesizes a combustion-like turbulent plume field.
func CombustionPlume(l Layout, seed uint64) *Grid { return volume.CombustionPlume(l, seed) }
