package sfcmem

import (
	"sfcmem/internal/metrics"
	"sfcmem/internal/parallel"
	"sfcmem/internal/timeline"
)

// Observability facade: the runtime instrumentation layer. Metrics and
// timelines are opt-in — the kernels pay nothing when no observer is
// attached (see DESIGN.md "Observability").

// Metrics types: lock-free per-worker counters, log-scaled latency
// histograms with quantile export, named phase timers, and a registry
// that snapshots everything to JSON (or publishes it via expvar).
type (
	MetricsRegistry = metrics.Registry
	MetricsCounter  = metrics.Counter
	Histogram       = metrics.Histogram
	PhaseTimer      = metrics.PhaseTimer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// TimelineRecorder collects per-worker spans and exports them as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
type TimelineRecorder = timeline.Recorder

// NewTimelineRecorder returns an empty timeline recorder.
func NewTimelineRecorder() *TimelineRecorder { return timeline.NewRecorder() }

// Scheduling instrumentation: the paper's two work-distribution
// strategies (round-robin pencils, dynamic-queue tiles) in variants that
// report per-worker item counts, busy time, and the load-imbalance
// factor (max/mean busy time).
type (
	// WorkObserver is called after each completed work item.
	WorkObserver = parallel.Observer
	// SchedulerStats aggregates one parallel run's per-worker behaviour.
	SchedulerStats = parallel.Stats
	// WorkerStat is one worker's item count and busy time.
	WorkerStat = parallel.WorkerStat
)

// RoundRobinInstrumented statically deals items to workers in
// round-robin order, reporting per-worker stats; obs (optional) sees
// each completed item.
func RoundRobinInstrumented(items, workers int, fn func(worker, item int), obs WorkObserver) SchedulerStats {
	return parallel.RoundRobinInstrumented(items, workers, fn, obs)
}

// DynamicInstrumented hands items to workers from a shared atomic queue,
// reporting per-worker stats; obs (optional) sees each completed item.
func DynamicInstrumented(items, workers int, fn func(worker, item int), obs WorkObserver) SchedulerStats {
	return parallel.DynamicInstrumented(items, workers, fn, obs)
}
