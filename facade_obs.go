package sfcmem

import (
	"context"

	"sfcmem/internal/metrics"
	"sfcmem/internal/parallel"
	"sfcmem/internal/timeline"
)

// Observability facade: the runtime instrumentation layer. Metrics and
// timelines are opt-in — the kernels pay nothing when no observer is
// attached (see DESIGN.md "Observability").

// Metrics types: lock-free per-worker counters, log-scaled latency
// histograms with quantile export, named phase timers, and a registry
// that snapshots everything to JSON (or publishes it via expvar).
type (
	MetricsRegistry = metrics.Registry
	MetricsCounter  = metrics.Counter
	Histogram       = metrics.Histogram
	PhaseTimer      = metrics.PhaseTimer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// TimelineRecorder collects per-worker spans and exports them as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
type TimelineRecorder = timeline.Recorder

// NewTimelineRecorder returns an empty timeline recorder.
func NewTimelineRecorder() *TimelineRecorder { return timeline.NewRecorder() }

// Scheduling instrumentation: the paper's two work-distribution
// strategies (round-robin pencils, dynamic-queue tiles) in variants that
// report per-worker item counts, busy time, and the load-imbalance
// factor (max/mean busy time).
type (
	// WorkObserver is called after each completed work item.
	WorkObserver = parallel.Observer
	// SchedulerStats aggregates one parallel run's per-worker behaviour.
	SchedulerStats = parallel.Stats
	// WorkerStat is one worker's item count and busy time.
	WorkerStat = parallel.WorkerStat
)

// workObserverKey carries a WorkObserver through a context so callers
// several layers above a kernel invocation (an HTTP handler, a request
// tracer) can see its per-item spans without threading Options down.
type workObserverKey struct{}

// WithWorkObserver returns ctx carrying obs. Every *Ctx kernel entry
// point (RenderCtx, BilateralAnyCtx, ...) installs the carried observer
// into its Options when the caller did not set one explicitly, so a
// request-scoped tracer attaches to whatever kernel the request runs.
// A nil obs returns ctx unchanged.
func WithWorkObserver(ctx context.Context, obs WorkObserver) context.Context {
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, workObserverKey{}, obs)
}

// WorkObserverFrom returns the observer carried by ctx, or nil.
func WorkObserverFrom(ctx context.Context) WorkObserver {
	obs, _ := ctx.Value(workObserverKey{}).(WorkObserver)
	return obs
}

// ctxFilterOptions resolves the effective filter options for a *Ctx
// entry point: an explicit Observer wins; otherwise the context's
// observer (if any) is installed. With neither, the options pass
// through untouched and the kernels take their uninstrumented paths.
func ctxFilterOptions(ctx context.Context, o FilterOptions) FilterOptions {
	if o.Observer == nil {
		o.Observer = WorkObserverFrom(ctx)
	}
	return o
}

// ctxRenderOptions is ctxFilterOptions for the renderer.
func ctxRenderOptions(ctx context.Context, o RenderOptions) RenderOptions {
	if o.Observer == nil {
		o.Observer = WorkObserverFrom(ctx)
	}
	return o
}

// RoundRobinInstrumented statically deals items to workers in
// round-robin order, reporting per-worker stats; obs (optional) sees
// each completed item.
func RoundRobinInstrumented(items, workers int, fn func(worker, item int), obs WorkObserver) SchedulerStats {
	return parallel.RoundRobinInstrumented(items, workers, fn, obs)
}

// DynamicInstrumented hands items to workers from a shared atomic queue,
// reporting per-worker stats; obs (optional) sees each completed item.
func DynamicInstrumented(items, workers int, fn func(worker, item int), obs WorkObserver) SchedulerStats {
	return parallel.DynamicInstrumented(items, workers, fn, obs)
}
